#pragma once

#include <vector>

#include "cluster/hierarchy.hpp"
#include "common/flat_map.hpp"
#include "common/flat_set.hpp"

/// \file stability.hpp
/// Clusterhead tenure tracking — the temporal side of the paper's Section
/// 5.3. The analysis bounds the expected duration before a critical
/// clusterhead is rejected: T_m = Theta(h_m) for migration-driven rejection
/// (Section 5.3.1 applied to level-m links) and T_R >= Theta(h_{k-2}) for
/// the recursive chain (eq. 23a). Both predict that mean clusterhead
/// lifetime *grows with level* like the intra-cluster hop count. This
/// tracker measures the realized tenure distribution per level (experiment
/// E22, reported by bench_alca_states).

namespace manet::cluster {

/// Tenure statistics for one hierarchy level.
struct TenureStats {
  double mean_lifetime = 0.0;   ///< completed tenures only, seconds
  double max_lifetime = 0.0;
  Size completed = 0;           ///< tenures that ended inside the window
  Size ongoing = 0;             ///< heads alive at the end of observation
  double mean_ongoing_age = 0.0;///< censored tenures' current age
};

class HeadLifetimeTracker {
 public:
  /// Observe snapshot \p h at time \p t (monotone). Heads appearing gain a
  /// birth stamp; heads disappearing contribute a completed tenure.
  void observe(const Hierarchy& h, Time t);

  /// Levels with any data (index = hierarchy level, starting at 1).
  Size level_count() const { return levels_.size(); }

  /// Tenure statistics for level \p k as of the last observation.
  TenureStats stats(Level k) const;

  /// Total completed tenures across levels.
  Size total_completed() const;

 private:
  struct LevelState {
    common::FlatMap<NodeId, Time> alive;  ///< head id -> birth time
    double lifetime_sum = 0.0;
    double lifetime_max = 0.0;
    Size completed = 0;
  };

  std::vector<LevelState> levels_;  ///< index: level - 1
  common::FlatSet<NodeId> present_;   ///< per-observe scratch (capacity retained)
  std::vector<NodeId> doomed_;        ///< per-observe scratch: heads to erase
  Time last_time_ = 0.0;
  bool started_ = false;
};

}  // namespace manet::cluster
