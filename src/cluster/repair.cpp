#include "cluster/repair.hpp"

#include <algorithm>
#include <cmath>
#include <iterator>

#include "common/check.hpp"

namespace manet::cluster {

// ---------------------------------------------------------------------------
// IncrementalAlca
// ---------------------------------------------------------------------------

void IncrementalAlca::seed(const graph::Graph& g, std::span<const NodeId> ids) {
  const Size n = g.vertex_count();
  MANET_CHECK_MSG(ids.size() == n, "ids array size must match vertex count");
  raw_elect_.resize(n);
  raw_votes_.assign(n, 0);
  for (NodeId u = 0; u < n; ++u) {
    NodeId best = u;
    for (const NodeId w : g.neighbors(u)) {
      if (ids[w] > ids[best]) best = w;
    }
    raw_elect_[u] = best;
    ++raw_votes_[best];
  }
  heads_.clear();
  for (NodeId v = 0; v < n; ++v) {
    if (raw_votes_[v] > 0) heads_.push_back(v);
  }
  last_dirty_ = last_gained_ = last_lost_ = 0;
}

void IncrementalAlca::retarget(NodeId u, NodeId to) {
  const NodeId old = raw_elect_[u];
  raw_elect_[u] = to;
  ++last_dirty_;
  if (--raw_votes_[old] == 0) {
    heads_.erase(std::lower_bound(heads_.begin(), heads_.end(), old));
    ++last_lost_;
  }
  if (++raw_votes_[to] == 1) {
    heads_.insert(std::lower_bound(heads_.begin(), heads_.end(), to), to);
    ++last_gained_;
  }
}

void IncrementalAlca::rescan(const graph::Graph& g, std::span<const NodeId> ids,
                             NodeId u) {
  NodeId best = u;
  for (const NodeId w : g.neighbors(u)) {
    if (ids[w] > ids[best]) best = w;
  }
  if (best != raw_elect_[u]) retarget(u, best);
}

void IncrementalAlca::apply(const graph::Graph& g, std::span<const NodeId> ids,
                            std::span<const graph::Edge> ups,
                            std::span<const graph::Edge> downs) {
  last_dirty_ = last_gained_ = last_lost_ = 0;
  // Removals first, each rescanning against the FINAL neighborhood: an
  // endpoint is dirty only if it just lost its elected target (anything else
  // it elected still out-ranks the removed neighbor). Rescanning in the final
  // graph may already observe newly added neighbors — harmless, because the
  // additions pass below only ever *raises* a target, and a rescan that
  // already picked the new maximum leaves nothing to raise.
  for (const auto& [u, v] : downs) {
    if (raw_elect_[u] == v) rescan(g, ids, u);
    if (raw_elect_[v] == u) rescan(g, ids, v);
  }
  // Additions: a new neighbor matters only if it out-ranks the current
  // target — no rescan needed, the current target already dominates the rest
  // of the neighborhood.
  for (const auto& [u, v] : ups) {
    if (ids[v] > ids[raw_elect_[u]]) retarget(u, v);
    if (ids[u] > ids[raw_elect_[v]]) retarget(v, u);
  }
}

void IncrementalAlca::emit(ElectionResult& out) const {
  const Size n = raw_elect_.size();
  out.head_of.resize(n);
  out.votes.assign(n, 0);
  out.clusterheads = heads_;
  // Identical to alca_elect(): v heads iff some raw election (self included)
  // targets it; heads self-affiliate (the Fig. 1 remap); votes count
  // neighbors whose final affiliation is v. A non-head u always has
  // raw_elect_[u] != u (electing itself would make it a head), so its raw
  // target survives the remap unchanged.
  for (NodeId u = 0; u < n; ++u) {
    if (raw_votes_[u] > 0) {
      out.head_of[u] = u;
    } else {
      out.head_of[u] = raw_elect_[u];
      ++out.votes[raw_elect_[u]];
    }
  }
}

// ---------------------------------------------------------------------------
// HierarchyRepairer
// ---------------------------------------------------------------------------

HierarchyRepairer::HierarchyRepairer(HierarchyOptions options) : options_(options) {}

void HierarchyRepairer::repair(const graph::Graph& g,
                               std::span<const graph::Edge> links_up,
                               std::span<const graph::Edge> links_down,
                               std::span<const NodeId> ids,
                               std::span<const geom::Vec2> positions,
                               const Hierarchy& prev, Hierarchy& out,
                               bool level0_delta_exact) {
  const Size n = g.vertex_count();
  MANET_CHECK(n > 0);
  if (options_.geometric_links) {
    MANET_CHECK_MSG(positions.size() == n,
                    "geometric level-k links need level-0 node positions");
  }
  // `usable` covers the induction that makes per-level splicing sound: prev
  // is the snapshot this repairer produced last call, so for every prev
  // level with >1 vertices, alca_[k] holds exactly the raw-election state of
  // (prev.level(k).topo, prev.level(k).ids). A builder-produced or
  // differently-sized prev (the sim's fallback ticks) arrives with valid_
  // cleared and re-seeds every level.
  const bool usable =
      valid_ && prev.level_count() > 0 && prev.level(0).vertex_count() == n;

  ++stats_.repairs;
  stats_.levels.clear();

  Hierarchy& h = out;
  h.levels_.clear();
  h.ancestor_.clear();
  h.children_.clear();
  h.members0_.clear();

  // Level 0: the physical topology. Mirrors HierarchyBuilder::build, minus
  // the per-call ids-uniqueness audit (ids are fixed per scenario; the
  // builder validates them on every fallback tick).
  LevelView base;
  base.topo = g;
  if (ids.empty()) {
    base.ids.resize(n);
    for (NodeId v = 0; v < n; ++v) base.ids[v] = v;
  } else {
    MANET_CHECK_MSG(ids.size() == n, "id assignment size mismatch");
    base.ids.assign(ids.begin(), ids.end());
  }
  base.node0.resize(n);
  for (NodeId v = 0; v < n; ++v) base.node0[v] = v;
  h.levels_.push_back(std::move(base));
  h.children_.emplace_back();
  h.members0_.emplace_back();

  auto& level0_members = h.members0_.back();
  level0_members.resize(n);
  for (NodeId v = 0; v < n; ++v) level0_members[v] = {v};

  h.ancestor_.emplace_back(n);
  for (NodeId v = 0; v < n; ++v) h.ancestor_[0][v] = v;

  for (Level k = 0; k < options_.max_levels; ++k) {
    LevelView& cur = h.levels_[k];
    if (cur.vertex_count() <= 1) break;

    if (alca_.size() <= k) alca_.resize(k + 1);
    IncrementalAlca& alca = alca_[k];
    stats_.levels.emplace_back();
    LevelRepairStats& ls = stats_.levels.back();

    // Splice / repair / re-seed decision. Matching ids mean prev level k had
    // the same dense vertex set, so alca's state is a valid baseline and the
    // edge diff against prev's level-k topology is the exact flip set.
    const bool have_prev =
        usable && k < prev.level_count() && prev.level(k).ids == cur.ids;
    if (!have_prev) {
      alca.seed(cur.topo, cur.ids);
      ls.reelected = true;
      ++stats_.reseeds;
    } else {
      std::span<const graph::Edge> ups_k, downs_k;
      if (k == 0 && level0_delta_exact) {
        ups_k = links_up;
        downs_k = links_down;
      } else {
        const auto a = prev.level(k).topo.edges();
        const auto b = cur.topo.edges();
        ups_scratch_.clear();
        downs_scratch_.clear();
        std::set_difference(b.begin(), b.end(), a.begin(), a.end(),
                            std::back_inserter(ups_scratch_));
        std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                            std::back_inserter(downs_scratch_));
        ups_k = ups_scratch_;
        downs_k = downs_scratch_;
      }
      ls.edge_flips = ups_k.size() + downs_k.size();
      if (ls.edge_flips == 0) {
        // Clean splice: the level's election state is already current.
        ls.spliced = true;
      } else if (ls.edge_flips * 10 >=
                 cur.topo.edge_count() + prev.level(k).topo.edge_count()) {
        // Saturated churn: applying a flip set this large (per-flip rescans
        // plus sorted-head maintenance) costs more than one linear election
        // pass, so cap the repair bill at the re-seed price. This is the
        // "churn-proportional, rebuild-bounded" half of the contract — under
        // torture-grade mobility the repairer degrades to builder cost
        // instead of paying delta overhead on top of it.
        alca.seed(cur.topo, cur.ids);
        ls.reelected = true;
        ++stats_.reseeds;
      } else {
        alca.apply(cur.topo, cur.ids, ups_k, downs_k);
        ls.dirty_vertices = alca.last_dirty_vertices();
        ls.heads_gained = alca.last_heads_gained();
        ls.heads_lost = alca.last_heads_lost();
      }
    }
    alca.emit(cur.election);

    const auto& heads = cur.election.clusterheads;
    const Size n_next = heads.size();
    if (n_next == cur.vertex_count()) {
      // No aggregation — same termination (and cleared election) as the
      // builder, whether it decided by electing or by its terminated-reuse
      // memo (both are the same pure function of this level's inputs).
      cur.election = ElectionResult{};
      break;
    }

    std::vector<NodeId> promote(cur.vertex_count(), kInvalidNode);
    for (Size i = 0; i < n_next; ++i) promote[heads[i]] = static_cast<NodeId>(i);
    cur.parent.resize(cur.vertex_count());
    for (NodeId u = 0; u < cur.vertex_count(); ++u) {
      cur.parent[u] = promote[cur.election.head_of[u]];
      MANET_CHECK(cur.parent[u] != kInvalidNode);
    }

    LevelView next;
    next.ids.resize(n_next);
    next.node0.resize(n_next);
    for (Size i = 0; i < n_next; ++i) {
      next.ids[i] = cur.ids[heads[i]];
      next.node0[i] = cur.node0[heads[i]];
    }

    if (options_.geometric_links) {
      // Same loop (and the same floating-point expression order) as the
      // builder — positions drift every tick, so this is always recomputed.
      std::vector<graph::Edge> next_edges;
      const double mean_ck = static_cast<double>(n) / static_cast<double>(n_next);
      const double range = options_.beta * options_.tx_radius * std::sqrt(mean_ck);
      const double range2 = range * range;
      for (NodeId a = 0; a < n_next; ++a) {
        const geom::Vec2 pa = positions[next.node0[a]];
        for (NodeId b = a + 1; b < n_next; ++b) {
          if (geom::distance2(pa, positions[next.node0[b]]) <= range2) {
            next_edges.emplace_back(a, b);
          }
        }
      }
      next.topo = graph::Graph(n_next, next_edges);
    } else {
      std::vector<graph::Edge> next_edges;
      for (const auto& [a, b] : cur.topo.edges()) {
        NodeId pa = cur.parent[a];
        NodeId pb = cur.parent[b];
        if (pa == pb) continue;
        if (pa > pb) std::swap(pa, pb);
        next_edges.emplace_back(pa, pb);
      }
      std::sort(next_edges.begin(), next_edges.end());
      next_edges.erase(std::unique(next_edges.begin(), next_edges.end()),
                       next_edges.end());
      next.topo = graph::Graph(n_next, next_edges);
    }

    // Rollups by linear bucket placement. Ascending scans land each bucket's
    // entries pre-sorted, matching the builder's per-cluster merge + sort.
    std::vector<std::vector<NodeId>> children(n_next);
    for (NodeId u = 0; u < cur.vertex_count(); ++u) {
      children[cur.parent[u]].push_back(u);
    }
    std::vector<NodeId> anc(n);
    for (NodeId v = 0; v < n; ++v) anc[v] = cur.parent[h.ancestor_[k][v]];
    std::vector<std::vector<NodeId>> members(n_next);
    for (NodeId v = 0; v < n; ++v) members[anc[v]].push_back(v);

    h.children_.push_back(std::move(children));
    h.members0_.push_back(std::move(members));
    h.ancestor_.push_back(std::move(anc));
    h.levels_.push_back(std::move(next));
  }

  LevelView& top = h.levels_.back();
  top.parent.assign(top.vertex_count(), kInvalidNode);
  valid_ = true;
}

}  // namespace manet::cluster
