#include "lm/rendezvous.hpp"

#include "common/check.hpp"
#include "common/hash.hpp"

namespace manet::lm {

std::uint64_t rendezvous_score(std::uint64_t salt, NodeId owner, NodeId candidate) noexcept {
  // Two-stage mix: fold the owner into the salt domain first so that owner
  // and candidate do not cancel under XOR symmetry.
  const std::uint64_t domain = common::hash_combine(salt, owner);
  return common::mix64(domain ^ (static_cast<std::uint64_t>(candidate) * 0x9E3779B97F4A7C15ULL));
}

NodeId rendezvous_pick(std::uint64_t salt, NodeId owner, std::span<const NodeId> candidates) {
  MANET_CHECK_MSG(!candidates.empty(), "rendezvous over empty candidate set");
  NodeId best = candidates[0];
  std::uint64_t best_score = rendezvous_score(salt, owner, best);
  for (Size i = 1; i < candidates.size(); ++i) {
    const std::uint64_t score = rendezvous_score(salt, owner, candidates[i]);
    if (score > best_score || (score == best_score && candidates[i] < best)) {
      best = candidates[i];
      best_score = score;
    }
  }
  return best;
}

Size rendezvous_pick_index(std::uint64_t salt, NodeId owner, Size n) {
  MANET_CHECK(n > 0);
  Size best = 0;
  std::uint64_t best_score = rendezvous_score(salt, owner, 0);
  for (Size i = 1; i < n; ++i) {
    const std::uint64_t score = rendezvous_score(salt, owner, static_cast<NodeId>(i));
    if (score > best_score) {
      best = i;
      best_score = score;
    }
  }
  return best;
}

}  // namespace manet::lm
