#pragma once

#include <vector>

#include "cluster/election.hpp"
#include "graph/graph.hpp"

/// \file hierarchy.hpp
/// The clustered hierarchy (paper Fig. 1): level-0 is the physical topology;
/// level-k nodes are the clusterheads elected at level k-1; level-k links
/// connect clusterheads whose member clusters are adjacent in the level-(k-1)
/// topology (two clusterheads are "1 level-k hop" apart exactly when such a
/// link exists, matching the paper's Section 5.2 event definitions).
///
/// A Hierarchy is an immutable snapshot. Mobile experiments rebuild the
/// snapshot at every sampling tick and feed consecutive snapshots to the
/// differ (cluster/diff.hpp) and the LM handoff engine (lm/handoff.hpp).

namespace manet::cluster {

/// One level of the hierarchy. Vertices are dense [0, |V_k|); `ids` maps
/// them back to *original* level-0 node identifiers, which is what election
/// compares and what cross-snapshot diffing keys on.
struct LevelView {
  graph::Graph topo;          ///< G_k = (V_k, E_k)
  std::vector<NodeId> ids;    ///< dense vertex -> original node id
  std::vector<NodeId> node0;  ///< dense vertex -> level-0 dense vertex of the head

  /// Election run on this level (produces level k+1). Empty (no heads) for
  /// the terminal level.
  ElectionResult election;

  /// For each dense vertex: dense index *at level k+1* of the cluster it
  /// belongs to; kInvalidNode on the terminal level.
  std::vector<NodeId> parent;

  Size vertex_count() const { return topo.vertex_count(); }
};

class Hierarchy {
 public:
  /// Number of levels including level 0. A fully aggregated hierarchy over a
  /// connected graph ends with a single top-level vertex.
  Size level_count() const { return levels_.size(); }

  /// Highest level index (L in the paper when fully aggregated).
  Level top_level() const { return static_cast<Level>(levels_.size() - 1); }

  const LevelView& level(Level k) const;

  /// Number of level-k clusters == |V_k|.
  Size cluster_count(Level k) const { return level(k).vertex_count(); }

  /// Dense vertex index at level k of the level-k cluster containing level-0
  /// node v (ancestor chain). ancestor(v, 0) == v.
  NodeId ancestor(NodeId v, Level k) const;

  /// Original node id of v's level-k clusterhead.
  NodeId ancestor_id(NodeId v, Level k) const;

  /// Level-(k-1) dense vertices belonging to level-k cluster c (children).
  const std::vector<NodeId>& children(Level k, NodeId cluster) const;

  /// Level-0 node ids belonging to level-k cluster c.
  const std::vector<NodeId>& members0(Level k, NodeId cluster) const;

  /// Hierarchical address of v: original head ids from the top level down to
  /// v itself, e.g. {100, 85, 68, 63} for node 63 in the paper's Fig. 1.
  std::vector<NodeId> address(NodeId v) const;

  /// Aggregation ratio alpha_k = |V_{k-1}| / |V_k| (paper Section 1.1).
  double alpha(Level k) const;

  /// Aggregation factor c_k = |V| / |V_k| (paper eq. (2)).
  double aggregation(Level k) const;

 private:
  friend class HierarchyBuilder;
  friend class HierarchyRepairer;

  std::vector<LevelView> levels_;
  /// ancestor_[k][v] for level-0 node v; ancestor_[0] is identity.
  std::vector<std::vector<NodeId>> ancestor_;
  /// children_[k][c]: level-(k-1) dense vertices of level-k cluster c.
  std::vector<std::vector<std::vector<NodeId>>> children_;
  /// members0_[k][c]: level-0 nodes of level-k cluster c.
  std::vector<std::vector<std::vector<NodeId>>> members0_;
};

}  // namespace manet::cluster
