/// E21-dynamic: CHLM resilience under a lossy control plane and node churn.
/// The paper prices every handoff at exactly hops(old, new) transmissions
/// and assumes node death away; this bench injects the faults back in
/// (sim/fault.hpp) and measures what the idealization hides:
///   - ARQ retransmission overhead on top of the ideal phi/gamma ledgers
///     (phi_retx / gamma_retx, packets per node per second),
///   - transfers that exhaust the retry budget and go stale,
///   - the repair path (owner re-registration + periodic server audit):
///     repairs, mean time-to-repair, and the query-consistency probe.
/// The headline acceptance bar: at 5% per-hop loss the repair path holds
/// query success at >= 0.99, so the paper's Theta(log^2 |V|) accounting
/// survives realistic control-plane loss at the cost of a bounded retx tax.

#include "bench_util.hpp"

using namespace manet;

namespace {

exp::ScenarioConfig resilience_scenario(Size n, double loss, double crash_rate) {
  exp::ScenarioConfig cfg = bench::paper_scenario();
  cfg.n = n;
  cfg.fault.loss = loss;
  cfg.fault.crash_rate = crash_rate;
  return cfg;
}

}  // namespace

int main() {
  bench::print_header(
      "E21-dynamic  bench_resilience — lossy control plane + ARQ + repair",
      "query success recovers to >= 0.99 under 5% per-hop loss; retx tax is bounded");

  const auto losses = {0.0, 0.01, 0.05, 0.1, 0.2};
  const std::vector<Size> nodes = {128, 256};
  const Size reps = bench::standard_replications();
  common::ThreadPool pool;

  bench::Artifact artifact("resilience", resilience_scenario(nodes.back(), 0.05, 0.0),
                           reps, pool.thread_count());

  exp::ResilienceReport headline;  // loss = 0.05, largest n
  for (const Size n : nodes) {
    analysis::TextTable table({"loss", "phi_retx", "gamma_retx", "reg_retx", "failed",
                               "repairs", "mttr s", "stale", "query"});
    for (const double loss : losses) {
      const exp::ScenarioConfig cfg = resilience_scenario(n, loss, 0.0);
      exp::RunOptions opts;
      opts.track_registration = true;
      const auto agg = exp::run_replications(cfg, reps, opts, &pool);
      const bool faulted = cfg.fault.enabled();
      const auto m = [&](const char* key) { return faulted ? agg.mean(key) : 0.0; };
      table.add_row({bench::fixed(loss, 2), bench::fixed(m("phi_retx_rate"), 4),
                     bench::fixed(m("gamma_retx_rate"), 4),
                     bench::fixed(m("reg_retx_rate"), 4),
                     bench::fixed(m("failed_transfers"), 1), bench::fixed(m("repairs"), 1),
                     bench::fixed(m("mean_time_to_repair"), 2),
                     bench::fixed(m("stale_entries"), 1),
                     faulted ? bench::fixed(m("query_success_rate"), 4) : "1.0000"});
      if (faulted) {
        const char* series[] = {"phi_retx_rate", "gamma_retx_rate", "failed_transfers",
                                "repairs", "mean_time_to_repair", "query_success_rate"};
        for (const char* key : series) {
          const auto s = agg.summary(key);
          char name[64];
          std::snprintf(name, sizeof(name), "%s.n%zu", key, n);
          artifact.add_point(name,
                             exp::SeriesPoint{loss, s.mean, s.ci95, s.count});
        }
        if (n == nodes.back() && loss == 0.05) {
          headline.loss = loss;
          headline.phi_retx_rate = agg.mean("phi_retx_rate");
          headline.gamma_retx_rate = agg.mean("gamma_retx_rate");
          headline.failed_transfers = agg.mean("failed_transfers");
          headline.stale_entries = agg.mean("stale_entries");
          headline.repairs = agg.mean("repairs");
          headline.mean_time_to_repair = agg.mean("mean_time_to_repair");
          headline.query_success_rate = agg.mean("query_success_rate");
          headline.query_success_mean = agg.mean("query_success_mean");
        }
      }
    }
    char title[96];
    std::snprintf(title, sizeof(title),
                  "|V| = %zu, per-hop Bernoulli loss, retry budget 4, audit 5 s",
                  n);
    std::printf("%s", table.to_string(title).c_str());
  }

  // Node churn on top of a mildly lossy channel: crashed nodes lose their
  // stored entries and their server roles; survivors re-elect and the
  // repair path re-registers the rejoined.
  {
    const Size n = 256;
    analysis::TextTable table({"crash /node/s", "crashes", "rejoins", "dropped",
                               "repairs", "mttr s", "stale", "query"});
    for (const double crash : {0.0005, 0.002, 0.005}) {
      const exp::ScenarioConfig cfg = resilience_scenario(n, 0.02, crash);
      const auto agg = exp::run_replications(cfg, reps, exp::RunOptions{}, &pool);
      table.add_row({bench::fixed(crash, 4), bench::fixed(agg.mean("crashes"), 1),
                     bench::fixed(agg.mean("rejoins"), 1),
                     bench::fixed(agg.mean("entries_dropped"), 1),
                     bench::fixed(agg.mean("repairs"), 1),
                     bench::fixed(agg.mean("mean_time_to_repair"), 2),
                     bench::fixed(agg.mean("stale_entries"), 1),
                     bench::fixed(agg.mean("query_success_rate"), 4)});
      const char* series[] = {"crashes", "rejoins", "repairs", "query_success_rate"};
      for (const char* key : series) {
        const auto s = agg.summary(key);
        artifact.add_point(std::string("churn.") + key,
                           exp::SeriesPoint{crash, s.mean, s.ci95, s.count});
      }
    }
    std::printf("%s",
                table.to_string("|V| = 256, loss = 0.02 plus crash/rejoin churn").c_str());
  }

  artifact.set_scalar("headline_loss", headline.loss);
  artifact.set_scalar("headline_query_success_rate", headline.query_success_rate);
  artifact.set_scalar("headline_phi_retx_rate", headline.phi_retx_rate);
  artifact.write();

  // Standalone resilience report (schema manet-resilience/1) for the
  // headline point, next to the bench artifact.
  {
    const char* dir = std::getenv("MANET_BENCH_DIR");
    const std::string path =
        (dir != nullptr && *dir != '\0' ? std::string(dir) + "/" : std::string()) +
        "RESILIENCE_headline.json";
    std::ofstream file(path);
    if (file) {
      analysis::JsonWriter w(file, /*pretty=*/true);
      exp::write_resilience_json(w, headline);
      file << '\n';
      std::printf("wrote report %s\n", path.c_str());
    }
  }

  std::printf(
      "\nreading: the retx tax scales with loss roughly as loss/(1-loss) per\n"
      "hop while the ideal phi/gamma ledgers are unchanged by construction\n"
      "(delivered transfers charge exactly hops(old, new)). Failed transfers\n"
      "appear from ~5%% loss up; the audit+rejoin repair path keeps the final\n"
      "query-consistency probe at >= 0.99 through 20%% loss, at a repair\n"
      "traffic cost that stays far below the handoff volume itself.\n");
  return 0;
}
