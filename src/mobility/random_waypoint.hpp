#pragma once

#include <memory>

#include "common/rng.hpp"
#include "mobility/model.hpp"

/// \file random_waypoint.hpp
/// Random waypoint mobility (Broch et al., MobiCom '98 — the paper's ref [4]).
///
/// Each node repeatedly (a) picks a uniform random waypoint in the region,
/// (b) travels to it in a straight line at a speed drawn from
/// [speed_min, speed_max], (c) pauses for `pause` seconds. The paper's
/// assumptions are fixed speed mu and zero pause; those are the defaults via
/// Params::fixed_speed().

namespace manet::mobility {

class RandomWaypoint final : public MobilityModel {
 public:
  struct Params {
    double speed_min = 1.0;  ///< m/s, must be > 0 (avoids the RWP speed-decay pathology)
    double speed_max = 1.0;  ///< m/s, >= speed_min
    double pause = 0.0;      ///< s at each waypoint (paper: 0)

    /// Paper configuration: constant speed mu, zero pause.
    static Params fixed_speed(double mu) { return Params{mu, mu, 0.0}; }
  };

  /// Nodes start at uniform positions in \p region (owned by caller,
  /// must outlive the model) with an initial waypoint already assigned.
  RandomWaypoint(const geom::Region& region, Size n, Params params, std::uint64_t seed);

  void advance_to(Time t) override;
  const std::vector<geom::Vec2>& positions() const override { return positions_; }
  Time now() const override { return now_; }
  Size node_count() const override { return positions_.size(); }
  const char* name() const override { return "random_waypoint"; }

  /// Direct access for tests: destination of node v's current leg.
  geom::Vec2 current_waypoint(NodeId v) const { return legs_[v].dest; }
  /// Speed of node v's current leg (m/s).
  double current_speed(NodeId v) const { return legs_[v].speed; }

 private:
  struct Leg {
    geom::Vec2 origin;   ///< position at leg start
    geom::Vec2 dest;     ///< waypoint
    Time depart;         ///< time motion starts (after any pause)
    Time arrive;         ///< time the waypoint is reached
    double speed;        ///< m/s on this leg
  };

  void start_new_leg(NodeId v, geom::Vec2 from, Time at);

  const geom::Region& region_;
  Params params_;
  /// One RNG stream per node: trajectories are then independent of the
  /// advance_to() call pattern (a node's k-th waypoint draw is always its
  /// k-th draw from its own stream, however the interleaving falls).
  std::vector<common::Xoshiro256> rngs_;
  std::vector<geom::Vec2> positions_;
  std::vector<Leg> legs_;
  Time now_ = 0.0;
};

}  // namespace manet::mobility
