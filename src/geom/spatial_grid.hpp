#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "geom/vec2.hpp"

/// \file spatial_grid.hpp
/// Uniform hash grid over the plane for radius-bounded neighbor queries.
///
/// Building the unit-disk graph naively is O(n^2) distance checks; with cell
/// size == query radius, each query inspects only the 3x3 cell neighborhood,
/// making graph construction O(n + m) in expectation under the paper's
/// constant-density deployment. This is the hot path of every topology
/// resample, so the grid stores node indices in flat bucket arrays (CSR
/// layout) rebuilt in two passes — no per-cell allocation.

namespace manet::geom {

class SpatialGrid {
 public:
  /// \p cell_size must be >= the maximum query radius for 3x3 correctness.
  explicit SpatialGrid(double cell_size);

  /// Rebuild the index over \p positions (indexed by NodeId).
  void rebuild(const std::vector<Vec2>& positions);

  /// Append to \p out all node ids within \p radius of \p query
  /// (excluding \p self if it is a valid id). Requires radius <= cell_size.
  void neighbors_within(Vec2 query, double radius, NodeId self,
                        std::vector<NodeId>& out) const;

  /// Visit every unordered pair (u, v), u < v, with distance <= radius.
  /// Callback signature: void(NodeId u, NodeId v).
  template <typename F>
  void for_each_pair_within(double radius, F&& visit) const;

  /// Same, restricted to the occupied cells with bucket index in
  /// [cell_begin, cell_end) — the sharding hook for parallel pair
  /// enumeration. Every pair is owned by exactly one cell (the one that
  /// enumerates it through the forward stencil), so covering [0,
  /// cell_count()) with disjoint ranges visits each pair exactly once, and
  /// concatenating the ranges' outputs in range order reproduces the
  /// unsharded enumeration order.
  template <typename F>
  void for_each_pair_within(double radius, std::size_t cell_begin, std::size_t cell_end,
                            F&& visit) const;

  double cell_size() const { return cell_size_; }
  std::size_t node_count() const { return positions_.size(); }
  /// Occupied cells in the current index (the shardable bucket count).
  std::size_t cell_count() const { return cell_starts_.size(); }

  /// Index into the occupied-cell table ([0, cell_count())) of the cell
  /// containing \p p, or -1 when that cell holds no node. This is the
  /// shard-space coordinate used by for_each_pair_within's cell ranges, so
  /// callers can map node -> owning shard slice (sim::NodeStateSoA caches it
  /// per node at anchor time).
  std::int32_t bucket_index_of(Vec2 p) const;

 private:
  std::int64_t cell_of(Vec2 p) const;
  std::int64_t cell_key(std::int64_t cx, std::int64_t cy) const;

  double cell_size_;
  std::vector<Vec2> positions_;
  // CSR buckets: sorted_ids_ grouped by cell; cell_index_ maps cell key ->
  // [start, end) via a sorted (key, start) table.
  std::vector<NodeId> sorted_ids_;
  std::vector<std::pair<std::int64_t, std::uint32_t>> cell_starts_;  // key -> start offset

  /// Locate bucket range for a cell key; returns {0,0} when absent.
  std::pair<std::uint32_t, std::uint32_t> bucket(std::int64_t key) const;

  template <typename F>
  void visit_bucket_pairs(std::uint32_t a_begin, std::uint32_t a_end, std::uint32_t b_begin,
                          std::uint32_t b_end, double r2, bool same_bucket, F&& visit) const;
};

template <typename F>
void SpatialGrid::for_each_pair_within(double radius, F&& visit) const {
  for_each_pair_within(radius, 0, cell_starts_.size(), std::forward<F>(visit));
}

template <typename F>
void SpatialGrid::for_each_pair_within(double radius, std::size_t cell_begin,
                                       std::size_t cell_end, F&& visit) const {
  const double r2 = radius * radius;
  // For each occupied cell, pair within the cell and with the 4 forward
  // neighbor cells (E, SW, S, SE); each unordered cell pair is visited once,
  // by the cell that owns it through the forward stencil.
  for (std::size_t c = cell_begin; c < cell_end; ++c) {
    const std::int64_t key = cell_starts_[c].first;
    const auto [a_begin, a_end] = bucket(key);
    visit_bucket_pairs(a_begin, a_end, a_begin, a_end, r2, /*same_bucket=*/true, visit);
    const std::int64_t cx = key >> 32;
    const std::int64_t cy = static_cast<std::int32_t>(key & 0xFFFFFFFF);
    static constexpr std::pair<int, int> kForward[] = {{1, 0}, {-1, 1}, {0, 1}, {1, 1}};
    for (const auto& [dx, dy] : kForward) {
      const auto [b_begin, b_end] = bucket(cell_key(cx + dx, cy + dy));
      if (b_begin == b_end) continue;
      visit_bucket_pairs(a_begin, a_end, b_begin, b_end, r2, /*same_bucket=*/false, visit);
    }
  }
}

template <typename F>
void SpatialGrid::visit_bucket_pairs(std::uint32_t a_begin, std::uint32_t a_end,
                                     std::uint32_t b_begin, std::uint32_t b_end, double r2,
                                     bool same_bucket, F&& visit) const {
  for (std::uint32_t i = a_begin; i < a_end; ++i) {
    const NodeId u = sorted_ids_[i];
    const Vec2 pu = positions_[u];
    const std::uint32_t j0 = same_bucket ? i + 1 : b_begin;
    for (std::uint32_t j = j0; j < b_end; ++j) {
      const NodeId v = sorted_ids_[j];
      if (distance2(pu, positions_[v]) <= r2) {
        if (u < v) {
          visit(u, v);
        } else {
          visit(v, u);
        }
      }
    }
  }
}

}  // namespace manet::geom
