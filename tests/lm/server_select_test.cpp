#include "lm/server_select.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "cluster/hierarchy_builder.hpp"
#include "common/rng.hpp"
#include "geom/region.hpp"
#include "net/unit_disk.hpp"

namespace manet::lm {
namespace {

struct Fixture {
  cluster::Hierarchy h;
  Size n = 0;
};

Fixture make(Size n, std::uint64_t seed) {
  common::Xoshiro256 rng(seed);
  const auto disk = geom::DiskRegion::with_density(n, 1.0);
  std::vector<geom::Vec2> pts(n);
  for (auto& p : pts) p = disk.sample(rng);
  net::UnitDiskBuilder builder(2.2, true);
  return Fixture{cluster::HierarchyBuilder().build(builder.build(pts)), n};
}

class SelectStrategyTest : public ::testing::TestWithParam<SelectStrategy> {
 protected:
  ServerSelectConfig config() const {
    ServerSelectConfig cfg;
    cfg.strategy = GetParam();
    return cfg;
  }
};

TEST_P(SelectStrategyTest, ServerLiesInOwnersCluster) {
  const auto f = make(300, 1);
  const auto cfg = config();
  for (NodeId owner = 0; owner < f.n; owner += 3) {
    for (Level k = kFirstServedLevel; k <= f.h.top_level(); ++k) {
      const NodeId server = select_server(f.h, owner, k, cfg);
      ASSERT_LT(server, f.n);
      // The server must belong to the owner's level-k cluster.
      EXPECT_EQ(f.h.ancestor(server, k), f.h.ancestor(owner, k))
          << "owner " << owner << " level " << k;
    }
  }
}

TEST_P(SelectStrategyTest, SelectionIsDeterministic) {
  const auto f = make(200, 2);
  const auto cfg = config();
  for (NodeId owner = 0; owner < 50; ++owner) {
    for (Level k = kFirstServedLevel; k <= f.h.top_level(); ++k) {
      EXPECT_EQ(select_server(f.h, owner, k, cfg), select_server(f.h, owner, k, cfg));
    }
  }
}

TEST_P(SelectStrategyTest, LoadIsBoundedAndSpread) {
  const auto f = make(400, 3);
  const auto cfg = config();
  std::vector<Size> load(f.n, 0);
  Size assignments = 0;
  for (NodeId owner = 0; owner < f.n; ++owner) {
    for (Level k = kFirstServedLevel; k <= f.h.top_level(); ++k) {
      ++load[select_server(f.h, owner, k, cfg)];
      ++assignments;
    }
  }
  const double mean = static_cast<double>(assignments) / static_cast<double>(f.n);
  const Size max_load = *std::max_element(load.begin(), load.end());
  // Equitable distribution (the paper's requirement): no node should carry
  // more than a modest multiple of the mean. The bound is loose enough for
  // every strategy yet tight enough to catch the everyone-hits-one-node
  // pathology the paper warns about with the raw GLS rule.
  EXPECT_LT(static_cast<double>(max_load), 20.0 * mean + 10.0);
  // At least a third of nodes should serve someone.
  const Size serving = static_cast<Size>(
      std::count_if(load.begin(), load.end(), [](Size l) { return l > 0; }));
  EXPECT_GT(serving, f.n / 3);
}

INSTANTIATE_TEST_SUITE_P(Strategies, SelectStrategyTest,
                         ::testing::Values(SelectStrategy::kFlatSuccessor,
                                           SelectStrategy::kWeightedDescent,
                                           SelectStrategy::kUnweightedDescent),
                         [](const auto& param_info) { return to_string(param_info.param); });

TEST(FlatSuccessor, StableUnderIrrelevantRelabeling) {
  // The flat rule must depend only on the member id set, not on which member
  // happens to be clusterhead — verified by comparing two hierarchies over
  // the same topology whose elections differ (shuffled ids), restricted to
  // clusters with identical member sets... covered more directly: selection
  // equals the id-successor of the owner within the member set.
  const auto f = make(250, 4);
  ServerSelectConfig cfg;  // default flat successor
  for (NodeId owner = 0; owner < 60; ++owner) {
    for (Level k = kFirstServedLevel; k <= f.h.top_level(); ++k) {
      const NodeId server = select_server(f.h, owner, k, cfg);
      const auto& members = f.h.members0(k, f.h.ancestor(owner, k));
      // server id must be the cyclic successor of owner among members\{owner}.
      const NodeId owner_id = owner;  // identity ids in this fixture
      NodeId best = kInvalidNode;
      std::uint32_t best_score = 0xFFFFFFFFu;
      for (const NodeId z : members) {
        if (z == owner_id) continue;
        const std::uint32_t score = z - owner_id - 1;
        if (best == kInvalidNode || score < best_score) {
          best = z;
          best_score = score;
        }
      }
      EXPECT_EQ(server, best == kInvalidNode ? owner : best);
    }
  }
}

TEST(FlatSuccessor, SingletonClusterSelfServes) {
  // A 2-node graph: level-1 cluster has both nodes; build a custom case
  // where a cluster has one member by using a disconnected pair handled via
  // augmentation-free construction.
  const graph::Graph g(1);
  const auto h = cluster::HierarchyBuilder().build(g);
  // Top level is 0; no served levels — nothing to assert beyond no crash.
  EXPECT_EQ(h.top_level(), 0u);
}

TEST(Descent, ExcludeOwnBranchAvoidsOwnersLevel1Cluster) {
  const auto f = make(300, 5);
  ServerSelectConfig cfg;
  cfg.strategy = SelectStrategy::kWeightedDescent;
  cfg.exclude_own_branch = true;
  Size checked = 0;
  for (NodeId owner = 0; owner < f.n && checked < 100; ++owner) {
    const Level k = kFirstServedLevel;
    if (k > f.h.top_level()) break;
    // Only meaningful when the owner's level-k cluster has > 1 child.
    const NodeId cluster = f.h.ancestor(owner, k);
    if (f.h.children(k, cluster).size() < 2) continue;
    const NodeId server = select_server(f.h, owner, k, cfg);
    EXPECT_NE(f.h.ancestor(server, k - 1), f.h.ancestor(owner, k - 1))
        << "server landed in the owner's own level-" << (k - 1) << " branch";
    ++checked;
  }
  EXPECT_GT(checked, 10u);
}

TEST(Descent, SaltRekeysAssignments) {
  const auto f = make(300, 6);
  ServerSelectConfig a, b;
  a.strategy = b.strategy = SelectStrategy::kWeightedDescent;
  b.salt = a.salt + 1;
  Size moved = 0, total = 0;
  for (NodeId owner = 0; owner < f.n; ++owner) {
    for (Level k = kFirstServedLevel; k <= f.h.top_level(); ++k) {
      if (select_server(f.h, owner, k, a) != select_server(f.h, owner, k, b)) ++moved;
      ++total;
    }
  }
  EXPECT_GT(moved, total / 3);
}

TEST(SelectServerIn, AgreesWithSelectServerForOwnCluster) {
  const auto f = make(200, 7);
  ServerSelectConfig cfg;
  for (NodeId owner = 0; owner < 40; ++owner) {
    for (Level k = kFirstServedLevel; k <= f.h.top_level(); ++k) {
      EXPECT_EQ(select_server_in(f.h, f.h.ancestor(owner, k), k, owner, cfg),
                select_server(f.h, owner, k, cfg));
    }
  }
}

TEST(SelectAllServers, MatchesPerOwnerSelectionExactly) {
  const auto f = make(350, 8);
  for (const auto strategy :
       {SelectStrategy::kFlatSuccessor, SelectStrategy::kWeightedDescent,
        SelectStrategy::kUnweightedDescent}) {
    ServerSelectConfig cfg;
    cfg.strategy = strategy;
    const auto bulk = select_all_servers(f.h, cfg);
    ASSERT_EQ(bulk.size(), f.n);
    for (NodeId owner = 0; owner < f.n; ++owner) {
      for (Level k = kFirstServedLevel; k <= f.h.top_level(); ++k) {
        ASSERT_EQ(bulk[owner][k - kFirstServedLevel], select_server(f.h, owner, k, cfg))
            << to_string(strategy) << " owner " << owner << " level " << k;
      }
    }
  }
}

TEST(SelectAllServers, FlatHierarchyYieldsEmptyRows) {
  const graph::Graph g(2, std::vector<graph::Edge>{{0, 1}});
  const auto h = cluster::HierarchyBuilder().build(g);
  const auto bulk = select_all_servers(h);
  ASSERT_EQ(bulk.size(), 2u);
  EXPECT_TRUE(bulk[0].empty());
}

TEST(SelectStrategyNames, AreDistinct) {
  EXPECT_STRNE(to_string(SelectStrategy::kFlatSuccessor),
               to_string(SelectStrategy::kWeightedDescent));
  EXPECT_STRNE(to_string(SelectStrategy::kWeightedDescent),
               to_string(SelectStrategy::kUnweightedDescent));
}

}  // namespace
}  // namespace manet::lm
