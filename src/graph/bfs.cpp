#include "graph/bfs.hpp"

#include "common/check.hpp"

namespace manet::graph {

namespace {

/// Shared BFS core over a preinitialized distance array and seeded queue.
void bfs_core(const Graph& g, std::vector<std::uint32_t>& dist, std::vector<NodeId>& queue) {
  std::size_t head = 0;
  while (head < queue.size()) {
    const NodeId u = queue[head++];
    const std::uint32_t du = dist[u];
    for (const NodeId v : g.neighbors(u)) {
      if (dist[v] == kUnreachable) {
        dist[v] = du + 1;
        queue.push_back(v);
      }
    }
  }
}

}  // namespace

std::vector<std::uint32_t> bfs_hops(const Graph& g, NodeId source) {
  MANET_CHECK(source < g.vertex_count());
  std::vector<std::uint32_t> dist(g.vertex_count(), kUnreachable);
  std::vector<NodeId> queue;
  dist[source] = 0;
  queue.push_back(source);
  bfs_core(g, dist, queue);
  return dist;
}

std::vector<std::uint32_t> bfs_hops_multi(const Graph& g, std::span<const NodeId> sources) {
  std::vector<std::uint32_t> dist(g.vertex_count(), kUnreachable);
  std::vector<NodeId> queue;
  for (const NodeId s : sources) {
    MANET_CHECK(s < g.vertex_count());
    if (dist[s] != 0) {
      dist[s] = 0;
      queue.push_back(s);
    }
  }
  bfs_core(g, dist, queue);
  return dist;
}

std::span<const std::uint32_t> BfsScratch::run(const Graph& g, NodeId source) {
  MANET_CHECK(source < g.vertex_count());
  dist_.assign(g.vertex_count(), kUnreachable);
  queue_.clear();
  dist_[source] = 0;
  queue_.push_back(source);
  bfs_core(g, dist_, queue_);
  return dist_;
}

std::uint32_t BfsScratch::hops_to(NodeId v) const {
  MANET_CHECK(v < dist_.size());
  return dist_[v];
}

}  // namespace manet::graph
