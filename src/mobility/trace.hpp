#pragma once

#include <iosfwd>
#include <vector>

#include "mobility/model.hpp"

/// \file trace.hpp
/// Mobility trace recording and replay. A trace is a sequence of timestamped
/// position snapshots. Recording lets experiments decouple trace generation
/// from analysis (and lets tests replay identical motion through different
/// protocol stacks); the text format is a simple self-describing table.

namespace manet::mobility {

struct TraceFrame {
  Time time = 0.0;
  std::vector<geom::Vec2> positions;
};

class Trace {
 public:
  Trace() = default;

  /// Record \p model every \p interval seconds for \p duration seconds,
  /// starting with a frame at the model's current time.
  static Trace record(MobilityModel& model, Time duration, Time interval);

  void append(TraceFrame frame);

  const std::vector<TraceFrame>& frames() const { return frames_; }
  Size frame_count() const { return frames_.size(); }
  Size node_count() const { return frames_.empty() ? 0 : frames_.front().positions.size(); }

  /// Serialize as "t x0 y0 x1 y1 ..." lines preceded by a header.
  void save(std::ostream& os) const;
  static Trace load(std::istream& is);

  /// Mean per-node displacement between consecutive frames (sanity metric).
  double mean_step_displacement() const;

 private:
  std::vector<TraceFrame> frames_;
};

/// Mobility model that replays a recorded trace with linear interpolation
/// between frames (and clamping beyond the last frame).
class TraceReplay final : public MobilityModel {
 public:
  explicit TraceReplay(Trace trace);

  void advance_to(Time t) override;
  const std::vector<geom::Vec2>& positions() const override { return positions_; }
  Time now() const override { return now_; }
  Size node_count() const override { return positions_.size(); }
  const char* name() const override { return "trace_replay"; }

 private:
  Trace trace_;
  std::vector<geom::Vec2> positions_;
  Time now_ = 0.0;
};

}  // namespace manet::mobility
