#pragma once

#include <cstdint>

/// \file alloc_profile.hpp
/// Global-allocator interposition for the E27 memory bench.
///
/// When the tree is configured with -DMANET_PROFILE_ALLOC=ON, every global
/// `operator new` / `operator delete` (scalar, array, aligned, nothrow)
/// increments process-wide relaxed atomic counters. The counters cost two
/// relaxed RMWs per allocation and nothing per free path otherwise; in the
/// default build the operators are not replaced at all and `enabled()`
/// returns false, so instrumented call sites (run_simulation's per-phase
/// deltas, bench_memory's allocs-per-tick gate) compile to a dead branch and
/// artifacts stay byte-identical to an uninstrumented binary.
///
/// The counters are process-global on purpose: the interesting number is
/// "how many times did the allocator run during the measured tick window",
/// not a per-subsystem attribution, and global new/delete cannot see the
/// caller anyway. Consumers snapshot totals() around a phase and diff.

namespace manet::common::alloc_profile {

struct Totals {
  std::uint64_t allocations = 0;  ///< calls into operator new (any flavor)
  std::uint64_t frees = 0;        ///< calls into operator delete (any flavor)
  std::uint64_t bytes = 0;        ///< sum of requested allocation sizes
};

/// True iff this binary was compiled with MANET_PROFILE_ALLOC=ON (the
/// operators below are actually interposed). All-zero totals are meaningful
/// only when this is true.
bool enabled() noexcept;

/// Cumulative process-wide totals since startup (all zeros when disabled).
Totals totals() noexcept;

/// Per-field difference `later - earlier` of two monotone snapshots.
Totals delta(const Totals& later, const Totals& earlier) noexcept;

}  // namespace manet::common::alloc_profile
