#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "common/metrics.hpp"
#include "exp/scenario.hpp"
#include "sim/trace.hpp"

/// \file simulation.hpp
/// Single-replication simulation runner: ties the mobility model, unit-disk
/// sampler, recursive ALCA hierarchy, LM handoff engine, link tracker,
/// hierarchy differ and ALCA state tracker together over one scenario, and
/// flattens everything the experiments need into a named metric list.
///
/// Metric names (per-level metrics use a ".k" suffix, k = level):
///   phi_rate / gamma_rate / total_rate   packets per node per second
///   phi_k.k / gamma_k.k                  per-level rates
///   f0                                   level-0 link events /node/s (E4)
///   f_k.k                                level-k membership changes /node/s (E5)
///   gprime_k.k                           level-k link events per level-k link /s (E6)
///   g_k.k                                level-k link events /node/s
///   ev.<i..vii>.k                        reorg event rates /node/s (E10)
///   levels                               mean clustered levels (L)
///   alpha.k / clusters.k / ek_per_v.k    hierarchy shape (E1, E3)
///   h_k.k                                measured mean intra-cluster hops (E2)
///   p_state1.k                           ALCA critical-state probability (E11)
///   q1, q1_over_Q, q_lower_bound         eq. (15)-(22) quantities (E11)
///   entries_per_node / load_mean / load_max / load_gini / map_size  (E7)
///   gls_handoff_rate / gls_update_rate / gls_total_rate  (E12, when enabled)
///   reg_rate / reg_updates / reg_k.k         registration overhead (E18)
///   rt_table_size / rt_stretch / rt_stretch_max / rt_failures  routing (E16/E17)
///   connected0                           1 if the *raw* initial deployment
///                                        draw was connected (augmentation
///                                        bridges don't count; retries use
///                                        derived seeds until a raw draw
///                                        connects or attempts run out)
///   ticks                                number of measured samples
///
/// Fault-plane metrics (emitted only when ScenarioConfig::fault.enabled()):
///   crashes / rejoins / scheduled_crashes      node-churn event counts
///   packets_lossy / packets_dropped            lossy-channel totals
///   phi_retx / gamma_retx (+ _rate)            retransmission ledgers
///   reg_retx / reg_retx_rate / reg_failed      registration ARQ (E18 + faults)
///   failed_transfers / entries_dropped         budget exhaustion, crash wipes
///   stale_entries / repairs / repair_packets   repair-path accounting
///   mean_time_to_repair                        mean stale -> repaired latency
///   query_success_rate / query_success_mean    consistency probe (final / mean)
///
/// Query-serving metrics (emitted only when RunOptions::query_load > 0):
///   query_lookups / query_hits / query_hit_rate   lookup totals over the run
///   query_epochs                                  epochs published (one per tick)
///   query_digest                                  32-bit fold of every answer
///                                                 (shard/thread identity witness)

namespace manet::exp {

struct RunMetrics {
  /// Insertion-ordered (name, value) list — downstream CSV/JSON writers rely
  /// on the order, so it is never resorted. Lookups go through a name index
  /// (campaign aggregation probes ~40 metrics per run; a linear scan here
  /// made that quadratic).
  std::vector<std::pair<std::string, double>> values;

  void set(std::string name, double value);
  /// NaN when the metric is absent.
  double get(const std::string& name) const;
  bool has(const std::string& name) const;

 private:
  /// name -> index into values (first occurrence wins, matching the old
  /// first-match linear-scan semantics).
  std::unordered_map<std::string, Size> index_;
};

struct RunOptions {
  bool track_states = true;        ///< ALCA state occupancy (E11)
  bool track_events = true;        ///< reorg event taxonomy (E10)
  bool run_gls = false;            ///< GLS tracker side-by-side (E12)
  bool measure_hops = true;        ///< sampled h_k measurement (E2)
  Size hop_sample_pairs = 64;      ///< pairs sampled per level for h_k
  bool track_registration = false; ///< owner-driven update overhead (E18)
  double registration_threshold = 0.5;  ///< in units of R_TX * sqrt(c_k)
  bool measure_routing = false;    ///< table size + path stretch on the final snapshot (E16/E17)
  Size stretch_pairs = 100;        ///< sampled pairs for the stretch measurement

  /// Incremental tick pipeline (default). The unit-disk graph is maintained
  /// as a delta over moved nodes, the hierarchy rebuild is skipped entirely
  /// on ticks where nothing it depends on changed, and elections are reused
  /// per level when a level's inputs are unchanged. Bit-identical to the
  /// full-rebuild path (enforced by tests/integration/tick_pipeline_test);
  /// set false to force the historical rebuild-everything tick, which is
  /// what bench_tick_pipeline compares against.
  bool incremental_tick = true;

  /// Localized hierarchy repair (incremental path only). Changed ticks feed
  /// the unit-disk link delta to cluster::HierarchyRepairer, which re-runs
  /// ALCA election only in the dirty neighborhoods of each level and splices
  /// unaffected levels through, instead of rebuilding every level from
  /// scratch. Bit-identical to the builder (same golden artifacts, enforced
  /// by tests/integration/tick_pipeline_test and tests/cluster/repair_test);
  /// set false to keep the full HierarchyBuilder::build() call as the
  /// reference implementation on changed ticks. ALCA scenarios only — other
  /// election algorithms always take the builder path.
  bool localized_repair = true;

  /// Intra-run worker threads for the sharded tick (docs/ARCHITECTURE.md
  /// "Sharded parallel tick"). 1 (the default) runs the historical
  /// sequential tick with no pool and no executor (unless \ref shards
  /// requests a topology explicitly); 0 means one worker per hardware
  /// thread; any other value sizes the per-run pool explicitly. The sharded
  /// tick is bit-identical to the sequential one at every thread count —
  /// work is split over a shard grid whose per-shard outputs are merged in
  /// shard index order, so metrics, traces and run artifacts never depend
  /// on this knob (enforced by tests/integration/sharded_tick_test).
  Size threads = 1;

  /// Shard topology for the sharded tick: the number of contiguous slices
  /// the per-tick index spaces are decomposed into (sim::resolve_shard_count
  /// rounds it up to a power of two and clamps to sim::kMaxShardCount).
  /// 0 (the default) derives the count from the worker pool size with
  /// sim::kDefaultShardCount as the floor. A non-zero value with
  /// threads == 1 still runs the sharded path (on a one-worker pool), which
  /// is how the identity suite pins shards x threads = {S} x {1}. Outputs
  /// are bit-identical at every shard count — this knob only moves
  /// throughput (enforced by tests/integration/sharded_tick_test).
  Size shards = 0;

  /// Query-serving plane (docs/QUERY_ENGINE.md, experiment E31): when > 0,
  /// each measured tick publishes the fresh (hierarchy, database) state as a
  /// lm::QueryEngine epoch and serves this many location lookups against it.
  /// Lookup targets are a pure function of the global lookup index and the
  /// per-lookup digest contributions fold with a commutative, associative
  /// wrapping sum, so the query_* metrics are bit-identical at every
  /// RunOptions::threads AND RunOptions::shards value (the fold is invariant
  /// to how [0, query_load) is partitioned). 0 (the default) constructs
  /// nothing and changes nothing.
  Size query_load = 0;

  /// Observability hooks (not owned; nullptr = off, zero cost). With a
  /// registry attached, every producer publishes live lm.* / net.* / alca.*
  /// instruments during the run; with a trace sink attached, the engine and
  /// producers emit typed TraceEvents (handoff transfers, migrations, the
  /// (i)-(vii) reorg taxonomy). See docs/ARCHITECTURE.md "Observability".
  common::MetricsRegistry* metrics = nullptr;
  sim::TraceSink* trace = nullptr;
};

/// Run one replication of \p config and return the flattened metrics.
RunMetrics run_simulation(const ScenarioConfig& config, const RunOptions& options = RunOptions{});

}  // namespace manet::exp
