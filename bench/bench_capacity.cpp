/// E19: the paper's closing significance claim — "the capacity of MANET
/// links need only grow at a polylogarithmic rate in order to scale
/// gracefully with increasing node count." We measure total LM control
/// overhead (handoff + registration) against the data-plane load of a fixed
/// per-node session workload: data transmissions per node grow as the mean
/// path length Theta(sqrt n), so the control fraction must *vanish* as the
/// network grows.
///
/// E30: the 10^5-node capacity demonstration for the sharded parallel tick.
/// The hot tick kernel — mobility advance, unit-disk delta update, link
/// diffing, and a fixed batch of hop queries — runs at n = 100 000 under
/// 1/2/8 worker threads, and at n = 25 000 over a full shards x threads
/// matrix (shard topology is a runtime knob since the SoA refactor). The
/// sharded path is bit-identical to sequential by construction (runtime
/// shard decomposition, shard-order merges), so the bench also folds every
/// delta edge and hop answer into a digest and reports
/// `identity_violations` when any shards x threads cell diverges from the
/// sequential reference. The matrix lands in the artifact as per-cell
/// `ticks_per_sec_s<S>_t<T>` scalars plus the derived `speedup_2t` /
/// `speedup_max` ratios; the committed baseline carries `min_capacity_n` =
/// 100000 and `min_parallel_speedup`, turning tools/check_bench.py into the
/// capacity + parallel-speedup acceptance gate (the speedup gate skips
/// itself, with a logged reason, when the manifest says the producing
/// machine had hardware_concurrency < 2).

#include <algorithm>
#include <chrono>
#include <iterator>
#include <memory>

#include "bench_util.hpp"
#include "cluster/hierarchy_builder.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "net/hop_oracle.hpp"
#include "net/link_tracker.hpp"
#include "net/unit_disk.hpp"
#include "sim/shard.hpp"
#include "traffic/sessions.hpp"

using namespace manet;

namespace {

struct KernelResult {
  double ticks_per_sec = 0.0;
  std::uint64_t digest = 0;  ///< FNV over the delta stream + hop answers
};

/// One deterministic (src, dst) hop-query pair per index (Weyl-style mixing;
/// no RNG so every thread count prices the identical batch).
std::pair<NodeId, NodeId> query_pair(Size q, Size n) {
  const auto src = static_cast<NodeId>((q * 2654435761ull) % n);
  auto dst = static_cast<NodeId>((q * 0x9E3779B97F4A7C15ull + 12345) % n);
  if (dst == src) dst = static_cast<NodeId>((dst + 1) % n);
  return {src, dst};
}

/// Run `ticks` steps of the sharded tick kernel (RWP mobility -> unit-disk
/// delta -> link diff -> kQueries hop lookups) and time it. threads == 1
/// with shards == 0 runs the pure sequential path (no pool, no executor);
/// any other combination attaches a ShardExecutor over
/// sim::resolve_shard_count(shards, workers) shards — mirroring the
/// RunOptions::threads / RunOptions::shards semantics exactly.
KernelResult run_shard_kernel(Size n, Size threads, Size shards, Size ticks) {
  constexpr Size kQueries = 256;
  auto cfg = bench::paper_scenario();
  cfg.n = n;
  auto scenario = exp::Scenario::materialize(cfg);

  std::unique_ptr<common::ThreadPool> pool;
  std::unique_ptr<sim::ShardExecutor> exec;
  net::UnitDiskBuilder disk(cfg.tx_radius());
  if (threads != 1 || shards != 0) {
    pool = std::make_unique<common::ThreadPool>(threads);
    exec = std::make_unique<sim::ShardExecutor>(
        *pool, sim::resolve_shard_count(shards, pool->thread_count()));
    disk.set_parallel(exec.get());
  }

  const auto& g0 = disk.update(scenario.mobility->positions());
  net::LinkTracker links(g0, 0.0);
  if (exec != nullptr) links.set_parallel(exec.get());
  net::HopOracle oracle;
  std::vector<net::HopOracle::Scratch> scratch(
      exec != nullptr ? exec->shard_count() : 1);
  std::vector<std::uint64_t> partial(scratch.size(), 0);
  net::LinkDelta delta;

  KernelResult out;
  auto mix = [&out](std::uint64_t v) {
    out.digest = (out.digest ^ v) * 1099511628211ull;
  };

  const auto started = std::chrono::steady_clock::now();
  for (Size step = 1; step <= ticks; ++step) {
    const Time t = static_cast<double>(step);
    scenario.mobility->advance_to(t);
    const auto& g = disk.update(scenario.mobility->positions());
    links.update_into(g, t, delta);
    for (const auto& e : delta.up) mix((std::uint64_t{e.first} << 32) | e.second);
    for (const auto& e : delta.down) mix((std::uint64_t{e.first} << 32) | e.second);

    oracle.prepare(g);
    if (exec != nullptr) {
      const Size shard_count = exec->shard_count();
      exec->for_each_shard([&](Size s) {
        const auto [begin, end] =
            sim::ShardExecutor::slice(kQueries, s, shard_count);
        std::uint64_t sum = 0;
        for (Size q = begin; q < end; ++q) {
          const auto [src, dst] = query_pair(q, n);
          sum += oracle.hops(src, dst, scratch[s]);
        }
        partial[s] = sum;
      });
      // Fold the shard partials into one total (integer addition, so the
      // grouping is immaterial) — the digest must see exactly what the
      // sequential arm sees: one sum per tick.
      std::uint64_t total = 0;
      for (Size s = 0; s < shard_count; ++s) total += partial[s];
      mix(total);
    } else {
      std::uint64_t sum = 0;
      for (Size q = 0; q < kQueries; ++q) {
        const auto [src, dst] = query_pair(q, n);
        sum += oracle.hops(src, dst, scratch[0]);
      }
      mix(sum);
    }
  }
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - started;
  out.ticks_per_sec =
      elapsed.count() > 0.0 ? static_cast<double>(ticks) / elapsed.count() : 0.0;
  return out;
}

}  // namespace

int main() {
  bench::print_header(
      "E19  bench_capacity — control overhead vs data-plane load",
      "control/data -> 0: links need only polylog capacity headroom (paper Sec. 6)");

  // Data workload: each node opens `kSessionsPerNodePerSec` unicast sessions
  // to uniform random peers, each carrying kPacketsPerSession packets along
  // shortest paths.
  constexpr double kSessionsPerNodePerSec = 0.2;
  constexpr double kPacketsPerSession = 10.0;

  auto cfg = bench::paper_scenario();
  exp::RunOptions opts;
  opts.track_events = false;
  opts.track_states = false;
  opts.measure_hops = false;
  opts.track_registration = true;

  analysis::TextTable table({"|V|", "control (pkts/node/s)", "data (pkts/node/s)",
                             "pkts/session", "control/data"});
  for (const Size n : bench::standard_nodes()) {
    cfg.n = n;
    const auto agg = exp::run_replications(cfg, bench::standard_replications(), opts);
    const double control = agg.mean("total_rate") + agg.mean("reg_rate");

    // Data plane: route the session workload over *strict hierarchical
    // routing* on a static snapshot of the same scenario, so stretch and
    // recovery detours are charged to the data side too.
    auto static_cfg = cfg;
    static_cfg.mobility = exp::MobilityKind::kStatic;
    auto scenario = exp::Scenario::materialize(static_cfg);
    net::UnitDiskBuilder disk(static_cfg.tx_radius(), true);
    const auto g = disk.build(scenario.mobility->positions());
    const auto h = cluster::HierarchyBuilder().build(g, scenario.ids);
    const routing::RoutingTables tables(g, h);

    traffic::SessionConfig session_cfg;
    session_cfg.sessions_per_node_per_sec = kSessionsPerNodePerSec;
    session_cfg.packets_per_session = static_cast<Size>(kPacketsPerSession);
    traffic::SessionWorkload workload(session_cfg, common::derive_seed(cfg.seed, 0xCAFE));
    for (int t = 0; t < 30; ++t) workload.tick(tables, n, 1.0);
    const double data = workload.stats().rate(n);

    table.add_row({std::to_string(n), bench::fixed(control, 5), bench::fixed(data, 5),
                   bench::fixed(workload.stats().mean_transmissions_per_session(), 4),
                   bench::fixed(control / data, 4)});
  }
  std::printf("%s", table.to_string("control-plane vs data-plane load").c_str());

  std::printf(
      "\nreading: data load grows ~sqrt(n) with the session path length while\n"
      "control grows ~log^2(n), so asymptotically the ratio falls to 0. At\n"
      "these scales the two growth rates are still close (log^2 elasticity\n"
      "~0.3 vs sqrt's 0.5), so expect the ratio to stop rising after the\n"
      "smallest scales and drift down from there — boundedness is the\n"
      "operative check; the decline is gentle. Paper Section 6.\n");

  // ---- E30: sharded-tick capacity at 10^5 + shards x threads matrix --------
  bench::print_header(
      "E30  bench_capacity — sharded parallel tick, shards x threads matrix",
      "any shard count x any thread count is bit-identical; threads buy wall-clock");

  auto artifact_cfg = bench::paper_scenario();
  artifact_cfg.n = 100000;
  bench::Artifact artifact("capacity", artifact_cfg, 1,
                           std::thread::hardware_concurrency());

  const Size kMatrixShards[] = {1, 4, 16, 64};
  const Size kMatrixThreads[] = {1, 2, 8};

  // Identity sweep: every shards x threads cell must fold the identical
  // delta stream and hop answers into the sequential reference's digest.
  const Size kIdentityN = 10000;
  Size identity_violations = 0;
  const auto seq = run_shard_kernel(kIdentityN, 1, 0, 3);
  for (const Size shards : kMatrixShards) {
    for (const Size threads : kMatrixThreads) {
      const auto par = run_shard_kernel(kIdentityN, threads, shards, 3);
      if (par.digest != seq.digest) ++identity_violations;
    }
  }
  std::printf("identity @ n=%zu over shards {1,4,16,64} x threads {1,2,8}: "
              "digest %016llx, violations %zu\n",
              static_cast<std::size_t>(kIdentityN),
              static_cast<unsigned long long>(seq.digest),
              static_cast<std::size_t>(identity_violations));
  artifact.set_scalar("identity_violations",
                      static_cast<double>(identity_violations));

  // Shards x threads wall-clock matrix at n = 25 000: one ticks/s cell per
  // combination, recorded as ticks_per_sec_s<S>_t<T> scalars. The derived
  // speedup ratios compare each topology's multi-thread cells against ITS
  // OWN single-thread cell, and the reported scalars take the best topology
  // (what a tuned run would pick).
  const Size kMatrixN = 25000;
  const Size kMatrixTicks = 6;
  analysis::TextTable matrix_table({"shards", "threads", "ticks/s", "digest"});
  double speedup_2t = 0.0, speedup_max = 0.0;
  for (const Size shards : kMatrixShards) {
    double base_tps = 0.0;
    for (const Size threads : kMatrixThreads) {
      const auto r = run_shard_kernel(kMatrixN, threads, shards, kMatrixTicks);
      char digest_hex[24];
      std::snprintf(digest_hex, sizeof digest_hex, "%016llx",
                    static_cast<unsigned long long>(r.digest));
      matrix_table.add_row({std::to_string(shards), std::to_string(threads),
                            bench::fixed(r.ticks_per_sec, 3), digest_hex});
      artifact.set_scalar("ticks_per_sec_s" + std::to_string(shards) + "_t" +
                              std::to_string(threads),
                          r.ticks_per_sec);
      if (threads == 1) {
        base_tps = r.ticks_per_sec;
      } else if (base_tps > 0.0) {
        const double ratio = r.ticks_per_sec / base_tps;
        if (threads == 2 && ratio > speedup_2t) speedup_2t = ratio;
        if (ratio > speedup_max) speedup_max = ratio;
      }
    }
  }
  std::printf("%s", matrix_table
                        .to_string("shards x threads matrix @ n=25000 (ticks/s)")
                        .c_str());
  std::printf("speedup_2t %.3f  speedup_max %.3f  (hardware_concurrency %zu)\n",
              speedup_2t, speedup_max,
              static_cast<std::size_t>(artifact.hardware_concurrency()));
  artifact.set_scalar("speedup_2t", speedup_2t);
  artifact.set_scalar("speedup_max", speedup_max);
  // The manifest's thread_count reports the largest worker count any matrix
  // cell actually ran with (the construction-time value was this machine's
  // hardware_concurrency, which the matrix deliberately oversubscribes).
  artifact.set_thread_count(*std::max_element(std::begin(kMatrixThreads),
                                              std::end(kMatrixThreads)));

  // Throughput sweep, culminating in the n = 100 000 acceptance point
  // (shards = 0: the auto topology a plain --threads run would get).
  analysis::TextTable capacity_table({"|V|", "threads", "ticks/s", "digest"});
  for (const Size n : {Size{25000}, Size{100000}}) {
    const Size ticks = n >= 100000 ? 5 : 8;
    for (const Size threads : kMatrixThreads) {
      const auto r = run_shard_kernel(n, threads, 0, ticks);
      char digest_hex[24];
      std::snprintf(digest_hex, sizeof digest_hex, "%016llx",
                    static_cast<unsigned long long>(r.digest));
      capacity_table.add_row({std::to_string(n), std::to_string(threads),
                              bench::fixed(r.ticks_per_sec, 3), digest_hex});
      artifact.add_point("ticks_per_sec_t" + std::to_string(threads),
                         exp::SeriesPoint{static_cast<double>(n),
                                          r.ticks_per_sec, 0.0, 1});
    }
  }
  std::printf("%s", capacity_table.to_string("sharded tick kernel throughput")
                        .c_str());
  // Mirrors the gate floors committed in the baseline so the artifact is
  // self-describing; check_bench.py reads the *baseline's* copy. The
  // min_parallel_speedup floor only binds when the producing machine has
  // hardware_concurrency >= 2 (single-core runners skip it, logged).
  artifact.set_scalar("min_capacity_n", 100000.0);
  artifact.set_scalar("min_parallel_speedup", 1.2);
  artifact.write();

  std::printf(
      "\nreading: the digest column is constant down each block — the runtime\n"
      "shard decomposition (shard-order merges; sim::resolve_shard_count) makes\n"
      "the parallel tick bit-identical to sequential at every shard count x\n"
      "thread count, so the matrix cells differ in wall-clock only.\n"
      "tools/check_bench.py enforces the n=100000 capacity point,\n"
      "identity_violations == 0, matrix-cell presence, and (on multi-core\n"
      "machines) speedup_max >= min_parallel_speedup.\n");
  return 0;
}
