#pragma once

#include <map>
#include <string>
#include <vector>

#include "analysis/stats.hpp"
#include "common/thread_pool.hpp"
#include "exp/simulation.hpp"

/// \file montecarlo.hpp
/// Monte-Carlo replication driver. Replications are embarrassingly parallel:
/// replication r runs with seed derive_seed(base, r) and the results are
/// merged in index order, so the aggregate is bit-identical regardless of
/// thread count (the HPC-guide determinism requirement).

namespace manet::exp {

/// Per-metric aggregation across replications.
class AggregatedMetrics {
 public:
  void add(const RunMetrics& metrics);
  void merge(const AggregatedMetrics& other);

  bool has(const std::string& name) const;
  double mean(const std::string& name) const;  ///< NaN when absent
  analysis::Summary summary(const std::string& name) const;

  std::vector<std::string> names() const;
  Size replication_count() const { return replications_; }

 private:
  std::map<std::string, analysis::Accumulator> acc_;
  Size replications_ = 0;
};

/// Run \p replications of \p base (seeds derived per replication index).
/// When \p pool is non-null the replications fan out across it.
AggregatedMetrics run_replications(const ScenarioConfig& base, Size replications,
                                   const RunOptions& options = RunOptions{},
                                   common::ThreadPool* pool = nullptr);

/// Run the replication block [rep_begin, rep_end) of \p base and return the
/// raw per-replication metric vectors in index order. Replication r always
/// runs with derive_seed(base.seed, r) for the *global* index r, so any
/// block decomposition reproduces exactly the replication set that
/// run_replications(base, rep_end) would produce — this is the campaign
/// work-unit primitive (exp/campaign_runner.hpp).
std::vector<RunMetrics> run_replication_block(const ScenarioConfig& base, Size rep_begin,
                                              Size rep_end,
                                              const RunOptions& options = RunOptions{},
                                              common::ThreadPool* pool = nullptr);

}  // namespace manet::exp
