#include "lm/reliable.hpp"

#include "common/check.hpp"

namespace manet::lm {

ReliableTransfer::ReliableTransfer(net::LossyChannel& channel, Size budget, Time timeout,
                                   double backoff)
    : channel_(channel), budget_(budget), timeout_(timeout), backoff_(backoff) {
  MANET_CHECK(backoff_ >= 1.0);
  MANET_CHECK(timeout_ >= 0.0);
}

TransferOutcome ReliableTransfer::transfer(Size hops) {
  TransferOutcome out;
  if (hops == 0) {
    out.delivered = true;
    out.attempts = 1;
    return out;
  }
  Time wait = timeout_;
  for (Size attempt = 0; attempt <= budget_; ++attempt) {
    ++out.attempts;
    const auto result = channel_.try_deliver(hops);
    out.packets += result.packets;
    if (result.delivered) {
      out.delivered = true;
      break;
    }
    if (attempt < budget_) {
      out.latency += wait;
      wait *= backoff_;
      ++total_retries_;
    }
  }
  out.retx = out.packets - (out.delivered ? hops : 0);
  total_retx_ += out.retx;
  if (!out.delivered) ++failed_;
  return out;
}

TransferOutcome ReliableTransfer::transfer_unroutable() {
  TransferOutcome out;
  out.attempts = budget_ + 1;
  // Each attempt burns one local route-probe transmission; no path exists,
  // so delivery never happens and the whole cost is retransmission overhead.
  out.packets = static_cast<PacketCount>(budget_ + 1);
  out.retx = out.packets;
  Time wait = timeout_;
  for (Size attempt = 0; attempt < budget_; ++attempt) {
    out.latency += wait;
    wait *= backoff_;
  }
  total_retx_ += out.retx;
  total_retries_ += budget_;
  ++failed_;
  return out;
}

}  // namespace manet::lm
