#include "net/radio.hpp"

#include <cmath>
#include <numbers>

#include "common/check.hpp"

namespace manet::net {

double connectivity_radius(std::size_t n_nodes, double density, double margin) {
  MANET_CHECK(n_nodes >= 2);
  MANET_CHECK(density > 0.0);
  const double ln_n = std::log(static_cast<double>(n_nodes));
  return std::sqrt((ln_n + margin) / (std::numbers::pi * density));
}

double radius_for_mean_degree(double target_degree, double density) {
  MANET_CHECK(target_degree > 0.0);
  MANET_CHECK(density > 0.0);
  return std::sqrt((target_degree + 1.0) / (density * std::numbers::pi));
}

}  // namespace manet::net
