#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/metrics.hpp"
#include "common/rng.hpp"
#include "lm/handoff.hpp"
#include "sim/trace.hpp"

/// \file handover_fsm.hpp
/// Per-handoff control-plane state machine, after the osmo-bsc handover FSM
/// shape (measurement -> decision -> resource allocation -> detect ->
/// complete, with explicit error and rollback-to-the-old-channel states) and
/// mQUIC's session-continuity requirements (validate the new path before
/// abandoning the old one).
///
/// The HandoffEngine stays the *measurement* plane: it commits every entry
/// move instantly and prices it at hops(old, new), exactly as the paper
/// does. The HandoverManager layered on top is the *control* plane: each
/// committed move spawns a make-before-break signalling procedure toward the
/// new server, and until that procedure completes, sessions resolving the
/// (owner, level) entry are served by the old server's retained copy. Every
/// failure edge is explicit:
///
///   kMeasure ---> kDecide ---> kAllocate ---> kDetect ---> kComplete
///                                  |  ^          |
///        timeout / retry-exhausted |  | backoff  | target-server crash,
///        target-server crash       |  +----------+ stale entry
///                                  v
///                              kRollback ---> kRolledBack (old server live;
///                                  |            re-attempt after holdoff)
///                                  v
///                               kFailed  (old server also dark; sessions
///                                         see an interruption until the
///                                         engine's repair path delivers)
///
/// Signalling attempts ride a private Bernoulli per-hop loss process (seeded
/// independently of the engine's transfer channel so attaching the FSM never
/// perturbs existing fault streams) and are paced by timeout-with-backoff:
/// a lost attempt is only discovered when its deadline passes, so retries
/// span ticks and session interruption windows become measurable. With zero
/// signalling loss and no crashed servers a procedure completes within its
/// spawn tick — the fault-free baseline is handover-invisible, as the
/// paper's idealization assumes.

namespace manet::lm {

enum class HandoverState : std::uint8_t {
  kMeasure = 0,  ///< server change observed (the engine's assignment diff)
  kDecide,       ///< handover decision taken (always "go": assignment is law)
  kAllocate,     ///< allocating the entry context at the new server
  kDetect,       ///< waiting for first contact confirmation via the new server
  kComplete,     ///< new server live; procedure retires
  kRollback,     ///< transient: aborting toward the old server
  kRolledBack,   ///< sessions pinned to the old server; re-attempt after holdoff
  kFailed,       ///< rollback impossible (old server also down)
};
inline constexpr std::size_t kHandoverStateCount = 8;

const char* to_string(HandoverState state);

struct HandoverFsmConfig {
  Time timeout = 0.2;         ///< first signalling-attempt timeout, s
  Size max_retries = 3;       ///< reattempts per stage after the first try
  double backoff = 2.0;       ///< timeout multiplier per retry (>= 1)
  double signal_loss = -1.0;  ///< per-hop signalling loss; < 0 = inherit the
                              ///< fault plane's Bernoulli loss
  Time holdoff = 1.0;         ///< rolled-back -> re-attempt delay, s
};

/// Accumulated FSM edge counts (every failure edge is a named counter so
/// seeded fault tests can assert each one was exercised).
struct HandoverStats {
  Size started = 0;            ///< procedures spawned (entry moves observed)
  Size completed = 0;          ///< reached kComplete
  Size retries = 0;            ///< timeout-induced reattempts
  Size timeouts = 0;           ///< signalling attempts that timed out
  Size rollbacks = 0;          ///< procedures aborted toward the old server
  Size rollback_failures = 0;  ///< rollbacks with no live old server (kFailed)
  Size target_crashes = 0;     ///< rollbacks caused by a down new server
  Size superseded = 0;         ///< replaced by a newer move of the same entry
  Size repaired = 0;           ///< resolved by the engine's repair path
  Size retired = 0;            ///< level vanished mid-procedure
  PacketCount signal_packets = 0;  ///< signalling transmissions (hops-priced)
  double completion_time_sum = 0.0;  ///< sum of (complete - start), s

  double mean_completion_time() const {
    return completed > 0 ? completion_time_sum / static_cast<double>(completed) : 0.0;
  }
};

/// Owns every in-flight handover procedure. Single-threaded like the rest of
/// the tick pipeline; flights are keyed (owner << 16 | level) in a std::map
/// so per-tick processing order is deterministic.
class HandoverManager : public HandoverObserver {
 public:
  HandoverManager(HandoverFsmConfig config, std::uint64_t seed);

  /// Per-node down flags owned by the caller (nullptr = nobody is ever down).
  void set_down(const std::vector<std::uint8_t>* down) noexcept { down_ = down; }
  void set_metrics(common::MetricsRegistry* registry);
  void set_trace(sim::TraceSink* trace) noexcept { trace_ = trace; }

  // HandoverObserver (driven by HandoffEngine during update/repair):
  void on_entry_move(NodeId owner, Level k, NodeId from, NodeId to, Time t,
                     bool migrated, PacketCount hops) override;
  void on_entry_stale(NodeId owner, Level k, NodeId holder, Time t) override;
  void on_entry_repaired(NodeId owner, Level k, NodeId server, Time t) override;
  void on_entry_retired(NodeId owner, Level k, Time t) override;

  /// Advance every in-flight procedure to \p now: send due attempts, expire
  /// deadlines, take rollback edges for crashed targets. Call once per tick
  /// after the engine's update and crash/rejoin delivery.
  void tick(Time now);

  /// Control-plane resolution for (owner, level): while a procedure is in
  /// flight the old server's retained copy serves (make-before-break);
  /// rolled-back entries are pinned to the old — increasingly out-of-date —
  /// copy, which is what makes rollback costs user-visible.
  struct FlightView {
    bool in_flight = false;
    NodeId server = kInvalidNode;  ///< serving copy while in flight
    bool rolled_back = false;      ///< old copy is out of date (misroute risk)
  };
  FlightView view(NodeId owner, Level k) const;

  bool has_flight(NodeId owner, Level k) const;
  /// State of the in-flight procedure; requires has_flight(owner, k).
  HandoverState state_of(NodeId owner, Level k) const;

  Size in_flight() const { return flights_.size(); }
  const HandoverStats& stats() const { return stats_; }

 private:
  struct Flight {
    NodeId owner = kInvalidNode;
    Level level = 0;
    NodeId old_server = kInvalidNode;
    NodeId new_server = kInvalidNode;
    HandoverState state = HandoverState::kMeasure;
    Size attempts = 0;      ///< attempts sent in the current stage
    bool awaiting = false;  ///< an attempt is outstanding (deadline armed)
    Time deadline = 0.0;    ///< attempt timeout or rolled-back holdoff expiry
    Time started_at = 0.0;
    bool migrated = false;     ///< phi/gamma attribution of the underlying move
    PacketCount hops = 1;      ///< signalling distance old -> new server
  };

  static std::uint64_t key(NodeId owner, Level k) {
    return (static_cast<std::uint64_t>(owner) << 16) | k;
  }
  bool is_down(NodeId v) const {
    return down_ != nullptr && v < down_->size() && (*down_)[v] != 0;
  }
  /// One signalling attempt over flight.hops: charges packets, returns
  /// delivery (deterministic success when signalling loss is zero).
  bool attempt(const Flight& flight);
  /// Advance one flight; returns false when the flight retired (erase it).
  bool advance(Flight& flight, Time now);
  /// Rollback edge; returns false when the flight retired (kFailed or the
  /// rollback target is gone).
  bool rollback(Flight& flight, Time now, bool target_crash);
  void trace(sim::TraceEventType type, const Flight& flight, Time t, double value) const;

  HandoverFsmConfig config_;
  common::Xoshiro256 rng_;
  std::map<std::uint64_t, Flight> flights_;
  HandoverStats stats_;
  const std::vector<std::uint8_t>* down_ = nullptr;
  sim::TraceSink* trace_ = nullptr;

  common::MetricsRegistry* metrics_ = nullptr;
  common::Counter* started_c_ = nullptr;
  common::Counter* completed_c_ = nullptr;
  common::Counter* retries_c_ = nullptr;
  common::Counter* timeouts_c_ = nullptr;
  common::Counter* rollbacks_c_ = nullptr;
  common::Counter* rollback_failures_c_ = nullptr;
  common::Histogram* completion_h_ = nullptr;
};

}  // namespace manet::lm
