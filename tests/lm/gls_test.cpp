#include "lm/gls.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "geom/region.hpp"
#include "net/unit_disk.hpp"

namespace manet::lm {
namespace {

TEST(GridHierarchy, CellSidesHalvePerLevel) {
  const GridHierarchy grid({0, 0}, 16.0, 3);  // L = 3: level-4 = whole square
  EXPECT_DOUBLE_EQ(grid.cell_side(4), 16.0);
  EXPECT_DOUBLE_EQ(grid.cell_side(3), 8.0);
  EXPECT_DOUBLE_EQ(grid.cell_side(2), 4.0);
  EXPECT_DOUBLE_EQ(grid.cell_side(1), 2.0);
}

TEST(GridHierarchy, CoverPicksSmallestCellAboveMinimum) {
  const auto grid = GridHierarchy::cover({0, 0}, 16.0, 2.0);
  EXPECT_GE(grid.cell_side(1), 2.0);
  EXPECT_LT(grid.cell_side(1), 4.0);
}

TEST(GridHierarchy, CellIndicesNestAcrossLevels) {
  const GridHierarchy grid({0, 0}, 16.0, 3);
  common::Xoshiro256 rng(1);
  for (int i = 0; i < 500; ++i) {
    const geom::Vec2 p{common::uniform(rng, 0, 16), common::uniform(rng, 0, 16)};
    for (Level k = 1; k <= 3; ++k) {
      const auto [cx, cy] = grid.cell(p, k);
      const auto [px, py] = grid.cell(p, k + 1);
      EXPECT_EQ(cx / 2, px);
      EXPECT_EQ(cy / 2, py);
    }
  }
}

TEST(GridHierarchy, TopLevelIsSingleCell) {
  const GridHierarchy grid({0, 0}, 10.0, 2);
  common::Xoshiro256 rng(2);
  for (int i = 0; i < 100; ++i) {
    const geom::Vec2 p{common::uniform(rng, 0, 10), common::uniform(rng, 0, 10)};
    const auto [cx, cy] = grid.cell(p, grid.top_level());
    EXPECT_EQ(cx, 0);
    EXPECT_EQ(cy, 0);
  }
}

TEST(GridHierarchy, BoundaryPointsClampIntoGrid) {
  const GridHierarchy grid({0, 0}, 8.0, 2);
  const auto [cx, cy] = grid.cell({8.0, 8.0}, 1);
  EXPECT_EQ(cx, 3);
  EXPECT_EQ(cy, 3);
}

struct GlsFixture {
  std::vector<geom::Vec2> pts;
  graph::Graph g{0};
  GridHierarchy grid{{0, 0}, 1.0, 1};
};

GlsFixture make(Size n, std::uint64_t seed) {
  common::Xoshiro256 rng(seed);
  const auto disk = geom::DiskRegion::with_density(n, 1.0);
  GlsFixture f;
  f.pts.resize(n);
  for (auto& p : f.pts) p = disk.sample(rng);
  net::UnitDiskBuilder builder(2.2, true);
  f.g = builder.build(f.pts);
  const double r = disk.radius();
  f.grid = GridHierarchy::cover({-r, -r}, 2.0 * r, 2.2);
  return f;
}

TEST(GlsService, ServersAreNeverTheOwner) {
  auto f = make(300, 3);
  GlsService service(f.grid);
  service.rebuild(f.pts);
  for (NodeId owner = 0; owner < 300; owner += 3) {
    for (Level k = 2; k <= f.grid.top_level(); ++k) {
      for (Size s = 0; s < kGlsSiblings; ++s) {
        const NodeId server = service.server_of(owner, k, s);
        if (server != kInvalidNode) {
          EXPECT_NE(server, owner);
        }
      }
    }
  }
}

TEST(GlsService, ServerLiesInASiblingSquare) {
  auto f = make(300, 4);
  GlsService service(f.grid);
  service.rebuild(f.pts);
  for (NodeId owner = 0; owner < 300; owner += 7) {
    for (Level k = 2; k <= f.grid.top_level(); ++k) {
      const auto own_parent = f.grid.cell(f.pts[owner], k);
      const auto own_child = f.grid.cell(f.pts[owner], k - 1);
      for (Size s = 0; s < kGlsSiblings; ++s) {
        const NodeId server = service.server_of(owner, k, s);
        if (server == kInvalidNode) continue;
        // Server must be inside the owner's level-k square...
        EXPECT_EQ(f.grid.cell(f.pts[server], k), own_parent);
        // ...but not in the owner's own level-(k-1) child square.
        EXPECT_NE(f.grid.cell(f.pts[server], k - 1), own_child);
      }
    }
  }
}

TEST(GlsService, SuccessorRuleSelectsLeastIdAbove) {
  // 4 nodes in one level-2 square, one per level-1 quadrant; owner id 1 must
  // recruit the cyclically-next ids in the three sibling quadrants.
  const GridHierarchy grid({0, 0}, 4.0, 1);  // level-1 cells of side 2
  std::vector<geom::Vec2> pts{{1, 1}, {3, 1}, {1, 3}, {3, 3}};
  GlsService service(grid);
  service.rebuild(pts);
  // Owner 0 (id 0) at cell (0,0): siblings hold nodes 1, 2, 3 — each alone,
  // so each is the successor pick in its square.
  std::vector<NodeId> servers;
  for (Size s = 0; s < kGlsSiblings; ++s) servers.push_back(service.server_of(0, 2, s));
  std::sort(servers.begin(), servers.end());
  EXPECT_EQ(servers, (std::vector<NodeId>{1, 2, 3}));
}

TEST(GlsService, EmptySiblingSquareYieldsInvalid) {
  const GridHierarchy grid({0, 0}, 4.0, 1);
  std::vector<geom::Vec2> pts{{1, 1}, {3, 1}};  // two quadrants empty
  GlsService service(grid);
  service.rebuild(pts);
  Size invalid = 0;
  for (Size s = 0; s < kGlsSiblings; ++s) {
    if (service.server_of(0, 2, s) == kInvalidNode) ++invalid;
  }
  EXPECT_EQ(invalid, 2u);
}

TEST(GlsService, LoadVectorSumsToValidAssignments) {
  auto f = make(250, 5);
  GlsService service(f.grid);
  service.rebuild(f.pts);
  Size assignments = 0;
  for (NodeId owner = 0; owner < 250; ++owner) {
    for (Level k = 2; k <= f.grid.top_level(); ++k) {
      for (Size s = 0; s < kGlsSiblings; ++s) {
        if (service.server_of(owner, k, s) != kInvalidNode) ++assignments;
      }
    }
  }
  Size load_total = 0;
  for (const Size l : service.load_vector()) load_total += l;
  EXPECT_EQ(load_total, assignments);
}

TEST(GlsHandoffTracker, StaticNodesIncurNoCost) {
  auto f = make(200, 6);
  GlsHandoffTracker tracker(f.grid);
  tracker.prime(f.pts, {}, 0.0);
  const auto tick = tracker.update(f.pts, f.g, {}, 1.0);
  EXPECT_EQ(tick.handoff_packets, 0u);
  EXPECT_EQ(tick.update_packets, 0u);
  EXPECT_EQ(tick.entries_moved, 0u);
}

TEST(GlsHandoffTracker, MovementAcrossGridBoundaryCosts) {
  auto f = make(300, 7);
  GlsHandoffTracker tracker(f.grid);
  tracker.prime(f.pts, {}, 0.0);
  // Push a quarter of nodes one cell over.
  for (Size v = 0; v < f.pts.size(); v += 4) f.pts[v] += {2.5, 0.0};
  net::UnitDiskBuilder builder(2.2, true);
  const auto g = builder.build(f.pts);
  const auto tick = tracker.update(f.pts, g, {}, 1.0);
  EXPECT_GT(tick.entries_moved, 0u);
  EXPECT_GT(tick.handoff_packets + tick.update_packets, 0u);
  EXPECT_GT(tracker.combined_rate(), 0.0);
}

}  // namespace
}  // namespace manet::lm
