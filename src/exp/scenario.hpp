#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "geom/region.hpp"
#include "lm/handoff.hpp"
#include "lm/handover_fsm.hpp"
#include "mobility/model.hpp"
#include "sim/fault.hpp"
#include "traffic/sessions.hpp"

/// \file scenario.hpp
/// Scenario configuration shared by all experiments. A scenario fixes the
/// paper's environment (Section 1.2): n nodes uniform in a disk whose area
/// grows with n (constant density), unit-disk links with a connectivity-
/// scaled R_TX, random-waypoint motion at speed mu with zero pause, and
/// recursive ALCA clustering.

namespace manet::exp {

enum class MobilityKind {
  kRandomWaypoint,  ///< the paper's model (default)
  kRandomDirection,
  kGaussMarkov,
  kGroup,           ///< reference-point group mobility (RPGM, HSR's scenario)
  kStatic,
};

enum class RadiusPolicy {
  kConnectivity,  ///< R_TX = Gupta-Kumar connectivity radius (default)
  kMeanDegree,    ///< R_TX sized for a target mean degree
};

/// Clusterhead election rule (ablation E13).
enum class ClusterAlgo {
  kAlca,     ///< paper's assumption (recursive highest-ID, 1-hop)
  kMaxMin1,  ///< max-min d-cluster, d = 1
  kMaxMin2,  ///< max-min d-cluster, d = 2
};

struct ScenarioConfig {
  Size n = 256;              ///< |V|
  double density = 1.0;      ///< nodes per m^2 (held constant across n)
  double mu = 1.0;           ///< node speed, m/s
  MobilityKind mobility = MobilityKind::kRandomWaypoint;
  Size group_size = 16;      ///< nodes per group for MobilityKind::kGroup
  RadiusPolicy radius_policy = RadiusPolicy::kConnectivity;
  double target_degree = 9.0;       ///< used by kMeanDegree
  double connectivity_margin = 3.5; ///< additive constant in the log term

  Time tick = 1.0;      ///< topology sampling interval, s
  Time warmup = 20.0;   ///< settle time before measurement starts, s
  Time duration = 80.0; ///< measured window, s

  /// Level-k link model (see cluster::HierarchyOptions): geometric
  /// hysteresis per the paper's eq. (7) by default; the naive contraction
  /// rule is kept for the ablation bench.
  bool geometric_links = true;
  double link_beta = 1.0;
  ClusterAlgo cluster_algo = ClusterAlgo::kAlca;

  /// Cap on clustered levels (default: effectively unbounded — the natural
  /// L = Theta(log n)). Lower caps trade fewer LM levels against larger top
  /// clusters; the ablation bench sweeps this.
  Level max_levels = 32;

  std::uint64_t seed = 1;

  /// Shuffle node ids (so spatial position and election priority are
  /// independent, as in the paper where ids are arbitrary).
  bool shuffle_ids = true;

  lm::HandoffConfig handoff;

  /// Fault-injection plan (all processes off by default; see sim/fault.hpp).
  /// When disabled the runner constructs none of the fault machinery and the
  /// run is bit-identical to a build without this field.
  sim::FaultConfig fault;

  /// Long-lived session workload + handover FSM plane (experiment E29).
  /// Off by default; when disabled none of the session/FSM machinery is
  /// constructed and the run is bit-identical to a build without these
  /// fields.
  bool sessions = false;
  traffic::SessionConfig session;
  lm::HandoverFsmConfig handover;

  /// Maximum attempts to draw an initially connected deployment before
  /// falling back to the best draw.
  int connect_attempts = 8;

  double tx_radius() const;  ///< resolved R_TX for this config
  std::string describe() const;
};

/// Materialized scenario: region + mobility model + id assignment.
struct Scenario {
  ScenarioConfig config;
  std::unique_ptr<geom::Region> region;
  std::unique_ptr<mobility::MobilityModel> mobility;
  std::vector<NodeId> ids;  ///< election ids per dense node

  static Scenario materialize(const ScenarioConfig& config);
};

}  // namespace manet::exp
