#include "traffic/sessions.hpp"

#include "common/check.hpp"

namespace manet::traffic {

double SessionStats::rate(Size node_count) const {
  const double denom = static_cast<double>(node_count) * window;
  return denom > 0.0 ? static_cast<double>(data_transmissions) / denom : 0.0;
}

double SessionStats::mean_transmissions_per_session() const {
  const Size delivered = sessions - undeliverable;
  if (delivered == 0) return 0.0;
  return static_cast<double>(data_transmissions) / static_cast<double>(delivered);
}

SessionWorkload::SessionWorkload(SessionConfig config, std::uint64_t seed)
    : config_(config), rng_(seed) {
  MANET_CHECK(config_.sessions_per_node_per_sec > 0.0);
  MANET_CHECK(config_.packets_per_session >= 1);
}

void SessionWorkload::tick(const routing::RoutingTables& tables, Size node_count, Time dt) {
  MANET_CHECK(dt > 0.0);
  MANET_CHECK(node_count >= 2);
  const double lambda =
      config_.sessions_per_node_per_sec * static_cast<double>(node_count) * dt;
  const std::uint64_t n_sessions = common::poisson(rng_, lambda);

  for (std::uint64_t s = 0; s < n_sessions; ++s) {
    const auto src = static_cast<NodeId>(common::uniform_index(rng_, node_count));
    auto dst = static_cast<NodeId>(common::uniform_index(rng_, node_count - 1));
    if (dst >= src) ++dst;  // uniform over peers != src
    ++stats_.sessions;
    const auto routed = tables.route(src, dst);
    if (!routed.delivered) {
      ++stats_.undeliverable;
      continue;
    }
    if (routed.recovered) ++stats_.recovered;
    stats_.data_transmissions +=
        static_cast<PacketCount>(config_.packets_per_session) *
        static_cast<PacketCount>(routed.path.size() - 1);
  }
  stats_.window += dt;
}

}  // namespace manet::traffic
