#include "analysis/regression.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"

namespace manet::analysis {
namespace {

TEST(FitLinear, RecoversExactLine) {
  const std::vector<double> xs{1, 2, 3, 4, 5};
  std::vector<double> ys;
  for (const double x : xs) ys.push_back(3.0 + 2.0 * x);
  const auto fit = fit_linear(xs, ys);
  EXPECT_NEAR(fit.intercept, 3.0, 1e-12);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
  EXPECT_NEAR(fit.rss, 0.0, 1e-12);
}

TEST(FitLinear, NoisyLineStillCloseWithHighR2) {
  common::Xoshiro256 rng(1);
  std::vector<double> xs, ys;
  for (int i = 0; i < 200; ++i) {
    const double x = i * 0.1;
    xs.push_back(x);
    ys.push_back(-1.0 + 0.5 * x + 0.05 * common::normal(rng));
  }
  const auto fit = fit_linear(xs, ys);
  EXPECT_NEAR(fit.intercept, -1.0, 0.05);
  EXPECT_NEAR(fit.slope, 0.5, 0.02);
  EXPECT_GT(fit.r2, 0.99);
}

TEST(FitLinear, ConstantXGivesZeroSlope) {
  const std::vector<double> xs{2, 2, 2};
  const std::vector<double> ys{1, 2, 3};
  const auto fit = fit_linear(xs, ys);
  EXPECT_DOUBLE_EQ(fit.slope, 0.0);
  EXPECT_DOUBLE_EQ(fit.intercept, 2.0);  // mean of y
}

TEST(FitProportional, RecoversSlopeThroughOrigin) {
  const std::vector<double> xs{1, 2, 3, 4};
  const std::vector<double> ys{2, 4, 6, 8};
  const auto fit = fit_proportional(xs, ys);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(fit.intercept, 0.0);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(FitProportional, BadOriginConstraintLowersR2) {
  // Data with a large intercept: constrained fit must score worse than free.
  const std::vector<double> xs{1, 2, 3, 4};
  std::vector<double> ys;
  for (const double x : xs) ys.push_back(100.0 + 0.1 * x);
  const auto constrained = fit_proportional(xs, ys);
  const auto free = fit_linear(xs, ys);
  EXPECT_LT(constrained.r2, free.r2);
}

TEST(FitPowerLaw, RecoversExponent) {
  std::vector<double> xs, ys;
  for (const double x : {10.0, 20.0, 40.0, 80.0, 160.0}) {
    xs.push_back(x);
    ys.push_back(3.0 * std::pow(x, 1.7));
  }
  const auto fit = fit_power_law(xs, ys);
  EXPECT_NEAR(fit.slope, 1.7, 1e-9);
  EXPECT_NEAR(std::exp(fit.intercept), 3.0, 1e-6);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(FitPowerLaw, LogGrowthGivesSmallExponent) {
  std::vector<double> xs, ys;
  for (const double x : {64.0, 256.0, 1024.0, 4096.0, 16384.0}) {
    xs.push_back(x);
    ys.push_back(std::log(x) * std::log(x));
  }
  const auto fit = fit_power_law(xs, ys);
  EXPECT_LT(fit.slope, 0.45);
  EXPECT_GT(fit.slope, 0.1);
}

TEST(FitPowerLawDeath, RejectsNonPositiveData) {
  const std::vector<double> xs{1, 2};
  const std::vector<double> ys{1, -2};
  EXPECT_DEATH(fit_power_law(xs, ys), "positive");
}

}  // namespace
}  // namespace manet::analysis
