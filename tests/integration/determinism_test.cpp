#include <gtest/gtest.h>

#include "exp/simulation.hpp"
#include "lm/handoff.hpp"

#include "cluster/hierarchy_builder.hpp"
#include "common/rng.hpp"
#include "geom/region.hpp"
#include "net/unit_disk.hpp"

/// Determinism and conservation properties across the whole stack. The
/// experiment pipeline's credibility rests on bit-reproducibility from
/// (seed, config) and on internal accounting identities; these tests pin
/// both across every mobility model.

namespace manet::exp {
namespace {

ScenarioConfig config(MobilityKind kind, std::uint64_t seed) {
  ScenarioConfig cfg;
  cfg.n = 150;
  cfg.seed = seed;
  cfg.warmup = 4.0;
  cfg.duration = 10.0;
  cfg.mobility = kind;
  cfg.radius_policy = RadiusPolicy::kMeanDegree;
  cfg.target_degree = 12.0;
  return cfg;
}

RunOptions full_options() {
  RunOptions opts;
  opts.track_events = true;
  opts.track_states = true;
  opts.measure_hops = true;
  opts.track_registration = true;
  opts.measure_routing = true;
  opts.stretch_pairs = 40;
  return opts;
}

class MobilityDeterminism : public ::testing::TestWithParam<MobilityKind> {};

TEST_P(MobilityDeterminism, BitIdenticalAcrossRuns) {
  const auto a = run_simulation(config(GetParam(), 71), full_options());
  const auto b = run_simulation(config(GetParam(), 71), full_options());
  ASSERT_EQ(a.values.size(), b.values.size());
  for (Size i = 0; i < a.values.size(); ++i) {
    EXPECT_EQ(a.values[i].first, b.values[i].first);
    EXPECT_DOUBLE_EQ(a.values[i].second, b.values[i].second) << a.values[i].first;
  }
}

INSTANTIATE_TEST_SUITE_P(Models, MobilityDeterminism,
                         ::testing::Values(MobilityKind::kRandomWaypoint,
                                           MobilityKind::kRandomDirection,
                                           MobilityKind::kGaussMarkov,
                                           MobilityKind::kGroup, MobilityKind::kStatic),
                         [](const auto& param_info) {
                           switch (param_info.param) {
                             case MobilityKind::kRandomWaypoint: return "rwp";
                             case MobilityKind::kRandomDirection: return "rd";
                             case MobilityKind::kGaussMarkov: return "gm";
                             case MobilityKind::kGroup: return "rpgm";
                             case MobilityKind::kStatic: return "static";
                           }
                           return "unknown";
                         });

TEST(Conservation, TickResultsSumToEngineTotals) {
  const Size n = 200;
  common::Xoshiro256 rng(5);
  const auto disk = geom::DiskRegion::with_density(n, 1.0);
  std::vector<geom::Vec2> pts(n);
  for (auto& p : pts) p = disk.sample(rng);
  net::UnitDiskBuilder builder(2.2, true);
  cluster::HierarchyBuilder hb;

  lm::HandoffEngine engine;
  engine.prime(hb.build(builder.build(pts)), 0.0);
  PacketCount phi_sum = 0, gamma_sum = 0;
  Size moved_sum = 0;
  for (int t = 1; t <= 20; ++t) {
    for (auto& p : pts) {
      p = disk.clamp(p + geom::Vec2{common::uniform(rng, -0.8, 0.8),
                                    common::uniform(rng, -0.8, 0.8)});
    }
    const auto g = builder.build(pts);
    const auto tick = engine.update(hb.build(g), g, static_cast<Time>(t));
    phi_sum += tick.phi_packets;
    gamma_sum += tick.gamma_packets;
    moved_sum += tick.entries_moved;
  }
  EXPECT_EQ(phi_sum, engine.total_phi());
  EXPECT_EQ(gamma_sum, engine.total_gamma());
  Size ledger_moves = 0;
  for (const auto& lvl : engine.per_level()) {
    ledger_moves += lvl.phi_entries + lvl.gamma_entries;
  }
  EXPECT_EQ(ledger_moves, moved_sum);
}

TEST(Conservation, CoreMetricsKeepStableRelativeOrder) {
  // Per-level metric sets vary with the realized hierarchy depth, but the
  // core metrics must exist at every seed and keep their relative order
  // (downstream CSV/JSON diffing relies on it).
  const char* kCore[] = {"connected0",       "phi_rate", "gamma_rate", "total_rate",
                         "f0",               "levels",   "entries_per_node",
                         "load_gini"};
  const auto a = run_simulation(config(MobilityKind::kRandomWaypoint, 3));
  const auto b = run_simulation(config(MobilityKind::kRandomWaypoint, 4));
  for (const auto* metrics : {&a, &b}) {
    Size last_index = 0;
    bool first = true;
    for (const char* name : kCore) {
      Size index = metrics->values.size();
      for (Size i = 0; i < metrics->values.size(); ++i) {
        if (metrics->values[i].first == name) {
          index = i;
          break;
        }
      }
      ASSERT_LT(index, metrics->values.size()) << "missing metric " << name;
      if (!first) {
        EXPECT_GT(index, last_index) << "order changed at " << name;
      }
      last_index = index;
      first = false;
    }
  }
}

}  // namespace
}  // namespace manet::exp
