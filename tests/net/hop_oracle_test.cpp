#include "net/hop_oracle.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "geom/region.hpp"
#include "graph/bfs.hpp"
#include "net/unit_disk.hpp"

namespace manet::net {
namespace {

using graph::Edge;
using graph::Graph;

/// Oracle vs reference pair BFS over a deterministic sample of pairs.
void expect_matches_bfs(HopOracle& oracle, const Graph& g, std::uint64_t seed,
                        Size pairs) {
  graph::BfsPairScratch ref;
  common::Xoshiro256 rng(seed);
  const Size n = g.vertex_count();
  for (Size i = 0; i < pairs; ++i) {
    const NodeId s = static_cast<NodeId>(common::uniform_index(rng, n));
    const NodeId t = static_cast<NodeId>(common::uniform_index(rng, n));
    ASSERT_EQ(oracle.hops(s, t), ref.hops(g, s, t)) << "s=" << s << " t=" << t;
  }
}

Graph random_deployment(Size n, double radius, bool ensure_connected,
                        std::uint64_t seed) {
  common::Xoshiro256 rng(seed);
  const auto region = geom::DiskRegion::with_density(n, 1.0);
  std::vector<geom::Vec2> positions(n);
  for (auto& p : positions) p = region.sample(rng);
  UnitDiskBuilder builder(radius, ensure_connected);
  return builder.build(positions);
}

TEST(HopOracle, MatchesPairBfsOnRandomDeployments) {
  for (const Size n : {40u, 250u, 800u}) {
    const Graph g = random_deployment(n, 2.2, /*ensure_connected=*/false, 7 + n);
    HopOracle oracle;
    oracle.prepare(g);
    expect_matches_bfs(oracle, g, 100 + n, 400);
  }
}

TEST(HopOracle, MatchesPairBfsOnBridgedSparseDeployment) {
  // A sparse radius fragments the raw unit-disk graph; connectivity
  // augmentation splices long bridge edges back in. The landmark bound is
  // purely graph-theoretic, so it must stay exact across those bridges.
  const Graph g = random_deployment(300, 1.1, /*ensure_connected=*/true, 17);
  HopOracle oracle;
  oracle.prepare(g);
  expect_matches_bfs(oracle, g, 18, 600);
}

TEST(HopOracle, ExactInActiveModeOnDeepGraph) {
  // A long path guarantees eccentricity far above the shallow-graph cutoff,
  // so this exercises the landmark A* route (and its near-query dispatch)
  // rather than the pass-through mode.
  const Size n = 120;
  std::vector<Edge> edges;
  for (NodeId v = 0; v + 1 < n; ++v) edges.emplace_back(v, v + 1);
  const Graph g(n, edges);
  HopOracle oracle;
  oracle.prepare(g);
  graph::BfsPairScratch ref;
  for (NodeId s = 0; s < n; s += 7) {
    for (NodeId t = 0; t < n; t += 11) {
      ASSERT_EQ(oracle.hops(s, t), ref.hops(g, s, t)) << "s=" << s << " t=" << t;
    }
  }
  EXPECT_EQ(oracle.hops(0, n - 1), n - 1);
  EXPECT_EQ(oracle.hops(5, 5), 0u);
}

TEST(HopOracle, UnreachableAcrossComponents) {
  // Two far-apart cliques, no augmentation: cross-component queries must
  // report kUnreachable, same-component queries stay exact. Also covers
  // minor components that contain no landmark.
  std::vector<Edge> edges;
  for (NodeId u = 0; u < 6; ++u) {
    for (NodeId v = u + 1; v < 6; ++v) edges.emplace_back(u, v);
  }
  edges.emplace_back(6, 7);
  edges.emplace_back(7, 8);
  const Graph g(9, edges);
  HopOracle oracle;
  oracle.prepare(g);
  graph::BfsPairScratch ref;
  for (NodeId s = 0; s < 9; ++s) {
    for (NodeId t = 0; t < 9; ++t) {
      ASSERT_EQ(oracle.hops(s, t), ref.hops(g, s, t)) << "s=" << s << " t=" << t;
    }
  }
  EXPECT_EQ(oracle.hops(0, 8), graph::kUnreachable);
  EXPECT_EQ(oracle.hops(6, 8), 2u);
}

TEST(HopOracle, FewerVerticesThanLandmarks) {
  std::vector<Edge> edges{{0, 1}, {1, 2}, {2, 3}, {3, 4}};
  const Graph g(5, edges);
  HopOracle oracle;
  oracle.prepare(g);
  graph::BfsPairScratch ref;
  for (NodeId s = 0; s < 5; ++s) {
    for (NodeId t = 0; t < 5; ++t) {
      ASSERT_EQ(oracle.hops(s, t), ref.hops(g, s, t)) << "s=" << s << " t=" << t;
    }
  }
}

TEST(HopOracle, RePrepareRebindsToNewGraph) {
  // The per-tick usage pattern: prepare on this tick's graph invalidates
  // everything learned from the previous one.
  const Graph g1 = random_deployment(200, 2.2, false, 5);
  const Graph g2 = random_deployment(200, 1.8, false, 6);
  HopOracle oracle;
  EXPECT_FALSE(oracle.ready());
  oracle.prepare(g1);
  EXPECT_TRUE(oracle.ready());
  expect_matches_bfs(oracle, g1, 50, 200);
  oracle.prepare(g2);
  expect_matches_bfs(oracle, g2, 51, 200);
}

}  // namespace
}  // namespace manet::net
