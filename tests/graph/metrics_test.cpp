#include "graph/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace manet::graph {
namespace {

Graph path_graph(NodeId n) {
  std::vector<Edge> edges;
  for (NodeId v = 0; v + 1 < n; ++v) edges.push_back({v, v + 1});
  return Graph(n, edges);
}

TEST(HopStats, ExactPathGraph) {
  // Mean pairwise distance of a path on n vertices is (n+1)/3.
  const auto g = path_graph(10);
  const auto stats = exact_hop_stats(g);
  EXPECT_EQ(stats.sampled_pairs, 90u);  // ordered pairs
  EXPECT_EQ(stats.unreachable, 0u);
  EXPECT_NEAR(stats.mean, 11.0 / 3.0, 1e-9);
  EXPECT_DOUBLE_EQ(stats.max, 9.0);
}

TEST(HopStats, DisconnectedCountsUnreachable) {
  const Graph g(4, std::vector<Edge>{{0, 1}});
  const auto stats = exact_hop_stats(g);
  EXPECT_GT(stats.unreachable, 0u);
  EXPECT_DOUBLE_EQ(stats.mean, 1.0);  // only 0<->1 reachable
}

TEST(HopStats, SampledConvergesToExactOnSmallGraph) {
  const auto g = path_graph(12);
  common::Xoshiro256 rng(5);
  const auto exact = exact_hop_stats(g);
  const auto sampled = sample_hop_stats(g, 2000, rng);  // >= n falls back to exact
  EXPECT_NEAR(sampled.mean, exact.mean, 1e-12);
}

TEST(HopStats, SampledIsReasonableEstimate) {
  const auto g = path_graph(50);
  common::Xoshiro256 rng(7);
  const auto exact = exact_hop_stats(g);
  const auto sampled = sample_hop_stats(g, 20, rng);
  EXPECT_NEAR(sampled.mean, exact.mean, exact.mean * 0.25);
}

TEST(HopStats, TinyGraphs) {
  EXPECT_EQ(exact_hop_stats(Graph(1)).sampled_pairs, 0u);
  EXPECT_EQ(exact_hop_stats(Graph(0)).sampled_pairs, 0u);
}

TEST(DegreeStats, PathGraph) {
  const auto stats = degree_stats(path_graph(5));
  EXPECT_DOUBLE_EQ(stats.min, 1.0);
  EXPECT_DOUBLE_EQ(stats.max, 2.0);
  EXPECT_DOUBLE_EQ(stats.mean, 8.0 / 5.0);
}

TEST(DegreeStats, RegularGraphHasZeroVariance) {
  // 4-cycle: every vertex degree 2.
  const Graph g(4, std::vector<Edge>{{0, 1}, {1, 2}, {2, 3}, {0, 3}});
  const auto stats = degree_stats(g);
  EXPECT_DOUBLE_EQ(stats.mean, 2.0);
  EXPECT_NEAR(stats.variance, 0.0, 1e-12);
}

}  // namespace
}  // namespace manet::graph
