#include "cluster/repair.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "cluster/alca.hpp"
#include "cluster/hierarchy_builder.hpp"
#include "common/rng.hpp"
#include "geom/region.hpp"
#include "net/unit_disk.hpp"

namespace manet::cluster {
namespace {

using graph::Edge;
using graph::Graph;

void expect_same(const Hierarchy& a, const Hierarchy& b) {
  ASSERT_EQ(a.level_count(), b.level_count());
  for (Level k = 0; k <= a.top_level(); ++k) {
    EXPECT_EQ(a.level(k).ids, b.level(k).ids) << "level " << k;
    EXPECT_EQ(a.level(k).parent, b.level(k).parent) << "level " << k;
    EXPECT_EQ(a.level(k).node0, b.level(k).node0) << "level " << k;
    EXPECT_EQ(a.level(k).election.head_of, b.level(k).election.head_of) << "level " << k;
    EXPECT_EQ(a.level(k).election.clusterheads, b.level(k).election.clusterheads)
        << "level " << k;
    EXPECT_EQ(a.level(k).election.votes, b.level(k).election.votes) << "level " << k;
    ASSERT_EQ(a.level(k).topo.edge_count(), b.level(k).topo.edge_count()) << "level " << k;
    EXPECT_TRUE(std::equal(a.level(k).topo.edges().begin(), a.level(k).topo.edges().end(),
                           b.level(k).topo.edges().begin()))
        << "level " << k;
  }
  for (NodeId v = 0; v < a.level(0).ids.size(); ++v) {
    EXPECT_EQ(a.address(v), b.address(v));
  }
}

// ---------------------------------------------------------------------------
// IncrementalAlca against the from-scratch election
// ---------------------------------------------------------------------------

TEST(IncrementalAlca, MatchesFreshElectionUnderEdgeChurn) {
  // Random graph evolved by random edge flips; after every apply() the
  // incremental state must project to exactly alca_elect on the same graph.
  const Size n = 60;
  common::Xoshiro256 rng(99);
  std::vector<NodeId> ids(n);
  std::iota(ids.begin(), ids.end(), 0u);
  common::shuffle(rng, ids.data(), ids.size());

  std::vector<Edge> edges;
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      if (common::uniform01(rng) < 0.06) edges.emplace_back(u, v);
    }
  }
  std::sort(edges.begin(), edges.end());
  Graph g(n, edges);

  IncrementalAlca alca;
  alca.seed(g, ids);

  for (int step = 0; step < 50; ++step) {
    std::vector<Edge> ups, downs;
    for (int flip = 0; flip < 4; ++flip) {
      NodeId u = static_cast<NodeId>(common::uniform_index(rng, n));
      NodeId v = static_cast<NodeId>(common::uniform_index(rng, n));
      if (u == v) continue;
      if (u > v) std::swap(u, v);
      const Edge e{u, v};
      const auto it = std::lower_bound(edges.begin(), edges.end(), e);
      if (it != edges.end() && *it == e) {
        edges.erase(it);
        downs.push_back(e);
      } else {
        edges.insert(it, e);
        ups.push_back(e);
      }
    }
    g = Graph(n, edges);
    alca.apply(g, ids, ups, downs);

    ElectionResult inc;
    alca.emit(inc);
    const ElectionResult ref = alca_elect(g, ids);
    ASSERT_EQ(inc.head_of, ref.head_of) << "step " << step;
    ASSERT_EQ(inc.clusterheads, ref.clusterheads) << "step " << step;
    ASSERT_EQ(inc.votes, ref.votes) << "step " << step;
    ASSERT_EQ(alca.heads(), ref.clusterheads) << "step " << step;
  }
}

// ---------------------------------------------------------------------------
// HierarchyRepairer against HierarchyBuilder on a mobile deployment
// ---------------------------------------------------------------------------

/// Drives repairer and builder over the same jittered deployment and
/// requires bit-identity at every step.
void run_dynamic_identity(HierarchyOptions options, std::uint64_t seed) {
  const Size n = 220;
  const double radius = 2.2;
  common::Xoshiro256 rng(seed);
  const auto disk_region = geom::DiskRegion::with_density(n, 1.0);
  std::vector<geom::Vec2> positions(n);
  for (auto& p : positions) p = disk_region.sample(rng);

  std::vector<NodeId> ids(n);
  std::iota(ids.begin(), ids.end(), 0u);
  common::shuffle(rng, ids.data(), ids.size());

  // ensure_connected = false: the repairer's delta contract covers raw radio
  // links only, which is exactly what the simulation feeds it on
  // bridge-free ticks.
  net::UnitDiskBuilder disk(radius, /*ensure_connected=*/false);
  const Graph* g = &disk.update(positions);

  const HierarchyBuilder builder(options);
  HierarchyRepairer repairer(options);

  Hierarchy a = builder.build(*g, ids, positions);  // initial prev (re-seed)
  Hierarchy b;
  Hierarchy* prev = &a;
  Hierarchy* cur = &b;
  repairer.repair(*g, disk.links_up(), disk.links_down(), ids, positions, *prev, *cur);
  expect_same(*cur, builder.build(*g, ids, positions));
  std::swap(prev, cur);

  for (int step = 0; step < 30; ++step) {
    // Vary churn intensity: a few big jumps, many small drifts, some ticks
    // where only a fraction of nodes move.
    const double scale = (step % 3 == 0) ? 0.8 : 0.12;
    for (NodeId v = 0; v < n; ++v) {
      if (step % 4 == 1 && v % 3 != 0) continue;
      positions[v].x += (common::uniform01(rng) - 0.5) * scale;
      positions[v].y += (common::uniform01(rng) - 0.5) * scale;
    }
    g = &disk.update(positions);
    repairer.repair(*g, disk.links_up(), disk.links_down(), ids, positions, *prev, *cur);
    expect_same(*cur, builder.build(*g, ids, positions));
    std::swap(prev, cur);
  }
}

TEST(HierarchyRepairer, MatchesBuilderUnderMotionContractionLinks) {
  run_dynamic_identity(HierarchyOptions{}, 21);
}

TEST(HierarchyRepairer, MatchesBuilderUnderMotionGeometricLinks) {
  HierarchyOptions options;
  options.geometric_links = true;
  options.beta = 1.0;
  options.tx_radius = 2.2;
  run_dynamic_identity(options, 22);
}

TEST(HierarchyRepairer, SelfDiffsWhenDeltaNotTrustworthy) {
  // With level0_delta_exact = false the passed spans must be ignored: hand
  // the repairer deliberately wrong deltas and require identity anyway.
  const Size n = 150;
  common::Xoshiro256 rng(33);
  const auto region = geom::DiskRegion::with_density(n, 1.0);
  std::vector<geom::Vec2> positions(n);
  for (auto& p : positions) p = region.sample(rng);

  net::UnitDiskBuilder disk(2.2, /*ensure_connected=*/false);
  const Graph* g = &disk.update(positions);
  const HierarchyBuilder builder;
  HierarchyRepairer repairer;

  Hierarchy a = builder.build(*g, {}, positions);
  Hierarchy b;
  repairer.repair(*g, {}, {}, {}, positions, a, b);  // re-seed call

  const std::vector<Edge> garbage{{0, 1}, {2, 3}, {4, 5}};
  Hierarchy* prev = &b;
  Hierarchy* cur = &a;
  for (int step = 0; step < 10; ++step) {
    for (auto& p : positions) {
      p.x += (common::uniform01(rng) - 0.5) * 0.3;
      p.y += (common::uniform01(rng) - 0.5) * 0.3;
    }
    g = &disk.update(positions);
    repairer.repair(*g, garbage, garbage, {}, positions, *prev, *cur,
                    /*level0_delta_exact=*/false);
    expect_same(*cur, builder.build(*g, {}, positions));
    std::swap(prev, cur);
  }
}

TEST(HierarchyRepairer, InvalidateForcesReseedAcrossForeignSnapshots) {
  // Simulates the sim's fallback ticks: the previous snapshot came from the
  // builder (repairer state is stale), invalidate() is called, and the next
  // repair() must still be exact even though the graph changed arbitrarily.
  const Size n = 120;
  common::Xoshiro256 rng(44);
  const auto region = geom::DiskRegion::with_density(n, 1.0);
  std::vector<geom::Vec2> positions(n);
  for (auto& p : positions) p = region.sample(rng);

  net::UnitDiskBuilder disk(2.2, /*ensure_connected=*/false);
  const Graph* g = &disk.update(positions);
  const HierarchyBuilder builder;
  HierarchyRepairer repairer;

  Hierarchy prev = builder.build(*g, {}, positions);
  Hierarchy out;
  repairer.repair(*g, {}, {}, {}, positions, prev, out);

  // Move a lot, rebuild via the builder (repairer never sees this tick).
  for (auto& p : positions) {
    p.x += (common::uniform01(rng) - 0.5) * 1.5;
    p.y += (common::uniform01(rng) - 0.5) * 1.5;
  }
  g = &disk.update(positions);
  prev = builder.build(*g, {}, positions);
  repairer.invalidate();

  // Next tick goes back through the repairer; deltas relative to the tick
  // the repairer last saw would be wrong, but re-seeding must ignore them.
  for (auto& p : positions) {
    p.x += (common::uniform01(rng) - 0.5) * 0.2;
    p.y += (common::uniform01(rng) - 0.5) * 0.2;
  }
  g = &disk.update(positions);
  repairer.repair(*g, disk.links_up(), disk.links_down(), {}, positions, prev, out);
  expect_same(out, builder.build(*g, {}, positions));
  EXPECT_GE(repairer.stats().reseeds, 1u);
}

// ---------------------------------------------------------------------------
// Dirty-region accounting on a hand-built 3-level hierarchy
// ---------------------------------------------------------------------------

/// Nine nodes in three triangles-of-influence: 2, 5, 8 carry the large ids
/// (102, 105, 108) and head their local clusters {0,1,2} / {3,4,5} / {6,7,8};
/// inter-head links 2-5 and 5-8 aggregate the heads into higher levels until
/// a single root remains.
struct HandBuilt {
  std::vector<NodeId> ids{0, 1, 102, 3, 4, 105, 6, 7, 108};
  std::vector<Edge> edges{{0, 2}, {1, 2}, {2, 5}, {3, 5}, {4, 5}, {5, 8}, {6, 8}, {7, 8}};
  std::vector<geom::Vec2> positions = std::vector<geom::Vec2>(9);

  Graph graph() const {
    auto sorted = edges;
    std::sort(sorted.begin(), sorted.end());
    return Graph(9, sorted);
  }
};

TEST(HierarchyRepairer, IrrelevantLinkUpSplicesEveryUpperLevel) {
  HandBuilt hb;
  const HierarchyBuilder builder;
  HierarchyRepairer repairer;

  const Graph g0 = hb.graph();
  Hierarchy prev = builder.build(g0, hb.ids, hb.positions);
  ASSERT_GE(prev.top_level(), 2u);  // the example really is 3+ levels deep
  Hierarchy out;
  repairer.repair(g0, {}, {}, hb.ids, hb.positions, prev, out);

  // Edge 0-1 appears: both endpoints already elect 2 (id 102), so nothing
  // retargets, the head set is unchanged, and every upper level splices.
  hb.edges.push_back({0, 1});
  const Graph g1 = hb.graph();
  const std::vector<Edge> ups{{0, 1}};
  Hierarchy out2;
  repairer.repair(g1, ups, {}, hb.ids, hb.positions, out, out2);
  expect_same(out2, builder.build(g1, hb.ids, hb.positions));

  const RepairStats& stats = repairer.stats();
  ASSERT_GE(stats.levels.size(), 2u);
  EXPECT_EQ(stats.levels[0].edge_flips, 1u);
  EXPECT_EQ(stats.levels[0].dirty_vertices, 0u);
  EXPECT_EQ(stats.levels[0].heads_gained, 0u);
  EXPECT_EQ(stats.levels[0].heads_lost, 0u);
  EXPECT_FALSE(stats.levels[0].reelected);
  for (Size k = 1; k < stats.levels.size(); ++k) {
    EXPECT_TRUE(stats.levels[k].spliced) << "level " << k;
    EXPECT_FALSE(stats.levels[k].reelected) << "level " << k;
  }
}

TEST(HierarchyRepairer, HeadLossBubblesOneLevelUp) {
  HandBuilt hb;
  const HierarchyBuilder builder;
  HierarchyRepairer repairer;

  const Graph g0 = hb.graph();
  Hierarchy prev = builder.build(g0, hb.ids, hb.positions);
  Hierarchy out;
  repairer.repair(g0, {}, {}, hb.ids, hb.positions, prev, out);

  // Edge 0-2 breaks: node 0 lost its elected head, rescans its now-empty
  // neighborhood and elects itself — the level-0 head set gains vertex 0,
  // so level 1's vertex set changes and that level genuinely re-elects.
  hb.edges.erase(std::find(hb.edges.begin(), hb.edges.end(), Edge{0, 2}));
  const Graph g1 = hb.graph();
  const std::vector<Edge> downs{{0, 2}};
  Hierarchy out2;
  repairer.repair(g1, {}, downs, hb.ids, hb.positions, out, out2);
  expect_same(out2, builder.build(g1, hb.ids, hb.positions));

  const RepairStats& stats = repairer.stats();
  ASSERT_GE(stats.levels.size(), 2u);
  EXPECT_EQ(stats.levels[0].edge_flips, 1u);
  EXPECT_EQ(stats.levels[0].dirty_vertices, 1u);  // only node 0 rescanned
  EXPECT_EQ(stats.levels[0].heads_gained, 1u);    // vertex 0 now self-heads
  EXPECT_EQ(stats.levels[0].heads_lost, 0u);
  EXPECT_TRUE(stats.levels[1].reelected);  // vertex set changed: re-seed
}

TEST(HierarchyRepairer, SaturatedChurnCapsRepairAtReseedCost) {
  HandBuilt hb;
  const HierarchyBuilder builder;
  HierarchyRepairer repairer;

  const Graph g0 = hb.graph();
  Hierarchy prev = builder.build(g0, hb.ids, hb.positions);
  Hierarchy out;
  repairer.repair(g0, {}, {}, hb.ids, hb.positions, prev, out);

  // Two new edges against 8 surviving ones trip the too-dirty bailout
  // (2 * 10 >= 10 + 8): the level re-seeds instead of applying flips, so the
  // per-call bill is capped at one linear election pass. Both endpoints of
  // both edges already elect their heads, so an apply would have found zero
  // dirty vertices — the bailout triggers on flip volume, not on impact.
  hb.edges.push_back({0, 1});
  hb.edges.push_back({3, 4});
  const Graph g1 = hb.graph();
  const std::vector<Edge> ups{{0, 1}, {3, 4}};
  Hierarchy out2;
  repairer.repair(g1, ups, {}, hb.ids, hb.positions, out, out2);
  expect_same(out2, builder.build(g1, hb.ids, hb.positions));

  const RepairStats& stats = repairer.stats();
  ASSERT_GE(stats.levels.size(), 1u);
  EXPECT_EQ(stats.levels[0].edge_flips, 2u);
  EXPECT_TRUE(stats.levels[0].reelected);       // bailed out to a re-seed
  EXPECT_EQ(stats.levels[0].dirty_vertices, 0u);  // apply path never ran
  EXPECT_FALSE(stats.levels[0].spliced);
}

}  // namespace
}  // namespace manet::cluster
