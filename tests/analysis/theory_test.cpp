#include "analysis/theory.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace manet::analysis {
namespace {

TEST(Theory, LevelsAreLogBaseAlpha) {
  TheoryParams p;
  p.alpha = 4.0;
  EXPECT_NEAR(expected_levels(256.0, p), 4.0, 1e-12);
  EXPECT_NEAR(expected_levels(1024.0, p), 5.0, 1e-12);
}

TEST(Theory, AggregationIsGeometric) {
  TheoryParams p;
  p.alpha = 3.0;
  EXPECT_DOUBLE_EQ(aggregation_ck(0, p), 1.0);
  EXPECT_DOUBLE_EQ(aggregation_ck(2, p), 9.0);
  EXPECT_DOUBLE_EQ(aggregation_ck(3, p), 27.0);
}

TEST(Theory, HopCountIsSqrtOfAggregation) {
  TheoryParams p;
  p.alpha = 4.0;
  // Eq. (3): h_k = sqrt(c_k) = 2^k at alpha = 4.
  EXPECT_DOUBLE_EQ(hop_count_hk(1, p), 2.0);
  EXPECT_DOUBLE_EQ(hop_count_hk(3, p), 8.0);
}

TEST(Theory, F0ScalesWithSpeedOverRadius) {
  TheoryParams p;
  p.mu = 4.0;
  p.tx_radius = 2.0;
  EXPECT_DOUBLE_EQ(link_change_f0(p), 2.0);
}

TEST(Theory, MigrationFrequencyDecaysAsInverseHk) {
  // Eq. (9): f_k * h_k = f_0 for every level.
  TheoryParams p;
  p.alpha = 4.0;
  for (Level k = 1; k <= 6; ++k) {
    EXPECT_NEAR(migration_fk(k, p) * hop_count_hk(k, p), link_change_f0(p), 1e-12);
  }
}

TEST(Theory, PhiPerLevelIsLevelInvariant) {
  // The paper's cancellation: phi_k does not depend on k.
  TheoryParams p;
  EXPECT_DOUBLE_EQ(phi_k(1, 1000.0, p), phi_k(5, 1000.0, p));
}

TEST(Theory, PhiTotalIsLogSquared) {
  TheoryParams p;
  p.alpha = std::exp(1.0);  // log base e => levels = ln n exactly
  const double n = 1000.0;
  EXPECT_NEAR(phi_total(n, p), link_change_f0(p) * std::log(n) * std::log(n), 1e-9);
}

TEST(Theory, GammaTotalMatchesLogSquaredShape) {
  TheoryParams p;
  p.alpha = std::exp(1.0);
  const double n = 500.0;
  EXPECT_NEAR(gamma_total(n, p), std::log(n) * std::log(n), 1e-9);
}

TEST(Theory, LinkDensityDecaysGeometrically) {
  // Eq. (13b): |E_k|/|V| ~ 1/c_k.
  TheoryParams p;
  p.alpha = 4.0;
  EXPECT_DOUBLE_EQ(level_link_density(1, p) / level_link_density(2, p), 4.0);
}

TEST(Theory, EntriesPerNodeGrowsLogarithmically) {
  TheoryParams p;
  p.alpha = 4.0;
  const double e1 = entries_per_node(256.0, p);
  const double e2 = entries_per_node(4096.0, p);
  EXPECT_NEAR(e2 - e1, 2.0, 1e-9);  // two extra levels
}

TEST(Theory, RecursionBoundMatchesEq23) {
  TheoryParams p;
  p.alpha = 4.0;
  // k=4: h_{k-2} = h_2 = 4; q1=0.3, p=0.5 => bound = (0.3/0.55)*4.
  EXPECT_NEAR(recursion_time_bound(4, 0.3, 0.5, p), (0.3 / 0.55) * 4.0, 1e-12);
}

TEST(Theory, ScaleParameterIsMultiplicative) {
  TheoryParams p1, p2;
  p2.scale = 3.0;
  EXPECT_NEAR(phi_total(100.0, p2), 3.0 * phi_total(100.0, p1), 1e-9);
}

}  // namespace
}  // namespace manet::analysis
