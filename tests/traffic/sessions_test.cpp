#include "traffic/sessions.hpp"

#include <gtest/gtest.h>

#include "cluster/hierarchy_builder.hpp"
#include "common/rng.hpp"
#include "geom/region.hpp"
#include "net/unit_disk.hpp"

namespace manet::traffic {
namespace {

struct World {
  graph::Graph g{0};
  cluster::Hierarchy h;
  Size n = 0;
};

World make(Size n, std::uint64_t seed) {
  common::Xoshiro256 rng(seed);
  const auto disk = geom::DiskRegion::with_density(n, 1.0);
  std::vector<geom::Vec2> pts(n);
  for (auto& p : pts) p = disk.sample(rng);
  net::UnitDiskBuilder builder(2.2, true);
  World w;
  w.g = builder.build(pts);
  w.h = cluster::HierarchyBuilder().build(w.g);
  w.n = n;
  return w;
}

TEST(Sessions, GeneratesExpectedVolume) {
  const auto w = make(200, 1);
  const routing::RoutingTables tables(w.g, w.h);
  SessionConfig cfg;
  cfg.sessions_per_node_per_sec = 0.5;
  cfg.packets_per_session = 5;
  SessionWorkload workload(cfg, 2);
  for (int t = 0; t < 40; ++t) workload.tick(tables, w.n, 1.0);
  const auto& stats = workload.stats();
  // Expected sessions: 0.5 * 200 * 40 = 4000; Poisson CI is tight here.
  EXPECT_NEAR(static_cast<double>(stats.sessions), 4000.0, 300.0);
  EXPECT_DOUBLE_EQ(stats.window, 40.0);
  EXPECT_EQ(stats.undeliverable, 0u);
  EXPECT_GT(stats.data_transmissions, 0u);
}

TEST(Sessions, RateScalesWithPacketTrainLength) {
  const auto w = make(150, 3);
  const routing::RoutingTables tables(w.g, w.h);
  SessionConfig small_cfg, big_cfg;
  small_cfg.packets_per_session = 2;
  big_cfg.packets_per_session = 20;
  SessionWorkload small_load(small_cfg, 4), big_load(big_cfg, 4);  // same seed: same pairs
  for (int t = 0; t < 20; ++t) {
    small_load.tick(tables, w.n, 1.0);
    big_load.tick(tables, w.n, 1.0);
  }
  EXPECT_EQ(big_load.stats().data_transmissions,
            10 * small_load.stats().data_transmissions);
}

TEST(Sessions, MeanTransmissionsMatchPathScale) {
  const auto w = make(300, 5);
  const routing::RoutingTables tables(w.g, w.h);
  SessionConfig cfg;
  cfg.packets_per_session = 10;
  SessionWorkload workload(cfg, 6);
  for (int t = 0; t < 20; ++t) workload.tick(tables, w.n, 1.0);
  const double per_session = workload.stats().mean_transmissions_per_session();
  // 10 packets x typical path of a 300-node disk (a few to ~20 hops).
  EXPECT_GT(per_session, 10.0);
  EXPECT_LT(per_session, 400.0);
}

TEST(Sessions, Deterministic) {
  const auto w = make(120, 7);
  const routing::RoutingTables tables(w.g, w.h);
  SessionWorkload a(SessionConfig{}, 8), b(SessionConfig{}, 8);
  for (int t = 0; t < 10; ++t) {
    a.tick(tables, w.n, 1.0);
    b.tick(tables, w.n, 1.0);
  }
  EXPECT_EQ(a.stats().sessions, b.stats().sessions);
  EXPECT_EQ(a.stats().data_transmissions, b.stats().data_transmissions);
}

TEST(Poisson, MeanAndVarianceMatch) {
  common::Xoshiro256 rng(9);
  for (const double lambda : {0.5, 4.0, 100.0}) {
    double sum = 0.0, sum2 = 0.0;
    const int draws = 20000;
    for (int i = 0; i < draws; ++i) {
      const auto k = static_cast<double>(common::poisson(rng, lambda));
      sum += k;
      sum2 += k * k;
    }
    const double mean = sum / draws;
    const double var = sum2 / draws - mean * mean;
    EXPECT_NEAR(mean, lambda, lambda * 0.05 + 0.05) << "lambda " << lambda;
    EXPECT_NEAR(var, lambda, lambda * 0.15 + 0.1) << "lambda " << lambda;
  }
}

}  // namespace
}  // namespace manet::traffic
