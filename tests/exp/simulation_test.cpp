#include "exp/simulation.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace manet::exp {
namespace {

ScenarioConfig quick_config(Size n = 150, std::uint64_t seed = 1) {
  ScenarioConfig cfg;
  cfg.n = n;
  cfg.seed = seed;
  cfg.warmup = 5.0;
  cfg.duration = 15.0;
  cfg.radius_policy = RadiusPolicy::kMeanDegree;
  cfg.target_degree = 12.0;
  return cfg;
}

TEST(RunMetrics, SetGetHas) {
  RunMetrics m;
  m.set("x", 1.5);
  EXPECT_TRUE(m.has("x"));
  EXPECT_FALSE(m.has("y"));
  EXPECT_DOUBLE_EQ(m.get("x"), 1.5);
  EXPECT_TRUE(std::isnan(m.get("y")));
}

TEST(RunSimulation, ProducesCoreMetrics) {
  const auto m = run_simulation(quick_config());
  EXPECT_TRUE(m.has("phi_rate"));
  EXPECT_TRUE(m.has("gamma_rate"));
  EXPECT_TRUE(m.has("f0"));
  EXPECT_TRUE(m.has("levels"));
  EXPECT_TRUE(m.has("entries_per_node"));
  EXPECT_GT(m.get("total_rate"), 0.0);
  EXPECT_GT(m.get("f0"), 0.0);
  EXPECT_GE(m.get("levels"), 2.0);
  EXPECT_DOUBLE_EQ(m.get("ticks"), 15.0);
  EXPECT_DOUBLE_EQ(m.get("window"), 15.0);
}

TEST(RunSimulation, IsDeterministic) {
  const auto a = run_simulation(quick_config(120, 7));
  const auto b = run_simulation(quick_config(120, 7));
  EXPECT_EQ(a.values.size(), b.values.size());
  for (Size i = 0; i < a.values.size(); ++i) {
    EXPECT_EQ(a.values[i].first, b.values[i].first);
    EXPECT_DOUBLE_EQ(a.values[i].second, b.values[i].second) << a.values[i].first;
  }
}

TEST(RunSimulation, SeedChangesResults) {
  const auto a = run_simulation(quick_config(120, 1));
  const auto b = run_simulation(quick_config(120, 2));
  EXPECT_NE(a.get("phi_rate"), b.get("phi_rate"));
}

TEST(RunSimulation, GlsMetricsPresentWhenEnabled) {
  RunOptions opts;
  opts.run_gls = true;
  const auto m = run_simulation(quick_config(150, 3), opts);
  EXPECT_TRUE(m.has("gls_handoff_rate"));
  EXPECT_TRUE(m.has("gls_total_rate"));
  EXPECT_GT(m.get("gls_total_rate"), 0.0);

  RunOptions no_gls;
  no_gls.run_gls = false;
  const auto m2 = run_simulation(quick_config(150, 3), no_gls);
  EXPECT_FALSE(m2.has("gls_total_rate"));
}

TEST(RunSimulation, EventTaxonomyTracked) {
  RunOptions opts;
  opts.track_events = true;
  const auto m = run_simulation(quick_config(200, 4), opts);
  // At least the level-1 link and election events must occur in 15 s.
  EXPECT_TRUE(m.has("ev.i.1"));
  EXPECT_TRUE(m.has("ev.iii.1") || m.has("ev.v.1"));
}

TEST(RunSimulation, StateTrackingProducesPProfile) {
  RunOptions opts;
  opts.track_states = true;
  const auto m = run_simulation(quick_config(200, 5), opts);
  EXPECT_TRUE(m.has("p_state1.0"));
  EXPECT_TRUE(m.has("q1"));
  const double p0 = m.get("p_state1.0");
  EXPECT_GT(p0, 0.0);
  EXPECT_LT(p0, 1.0);
  EXPECT_GT(m.get("q1_over_Q"), 0.0);
}

TEST(RunSimulation, HopMeasurementGrowsWithLevel) {
  RunOptions opts;
  opts.measure_hops = true;
  const auto m = run_simulation(quick_config(300, 6), opts);
  const double h1 = m.get("h_k.1");
  const double h2 = m.get("h_k.2");
  EXPECT_GT(h1, 0.0);
  EXPECT_GT(h2, h1 * 0.9);  // generally larger; allow sampling noise
}

TEST(RunSimulation, RegistrationMetricsWhenEnabled) {
  RunOptions opts;
  opts.track_registration = true;
  opts.track_events = false;
  opts.track_states = false;
  opts.measure_hops = false;
  const auto m = run_simulation(quick_config(200, 21), opts);
  EXPECT_TRUE(m.has("reg_rate"));
  EXPECT_GT(m.get("reg_rate"), 0.0);
  EXPECT_GT(m.get("reg_updates"), 0.0);
  EXPECT_TRUE(m.has("reg_k.2"));

  RunOptions off;
  off.track_registration = false;
  const auto m2 = run_simulation(quick_config(200, 21), off);
  EXPECT_FALSE(m2.has("reg_rate"));
}

TEST(RunSimulation, RoutingMetricsWhenEnabled) {
  RunOptions opts;
  opts.measure_routing = true;
  opts.track_events = false;
  opts.track_states = false;
  opts.measure_hops = false;
  opts.stretch_pairs = 60;
  const auto m = run_simulation(quick_config(200, 22), opts);
  EXPECT_GT(m.get("rt_table_size"), 1.0);
  EXPECT_GE(m.get("rt_stretch"), 1.0);
  EXPECT_LT(m.get("rt_stretch"), 3.0);
  EXPECT_DOUBLE_EQ(m.get("rt_failures"), 0.0);
}

TEST(RunSimulation, TenureMetricsTrackedWithStates) {
  RunOptions opts;
  opts.track_states = true;
  opts.track_events = false;
  opts.measure_hops = false;
  const auto m = run_simulation(quick_config(250, 23), opts);
  // Level-1 heads churn fast enough that a completed tenure exists in 15 s.
  EXPECT_TRUE(m.has("tenure_k.1") || m.has("tenure_min_k.1"));
  const double t1 = m.has("tenure_k.1") ? m.get("tenure_k.1") : m.get("tenure_min_k.1");
  EXPECT_GT(t1, 0.0);
}

TEST(RunSimulation, Connected0ReflectsRawDraw) {
  // Sparse regression for the dead retry loop: at mean degree 2 the raw draw
  // fragments with near-certainty, and with a single attempt the metric must
  // say so. The builder's augmentation bridges used to mask this — the old
  // is_connected(g0) check could never fail, so connected0 was always 1.
  auto cfg = quick_config(80, 5);
  cfg.target_degree = 2.0;
  cfg.connect_attempts = 1;
  cfg.duration = 5.0;
  const auto m = run_simulation(cfg);
  EXPECT_DOUBLE_EQ(m.get("connected0"), 0.0);
  EXPECT_GT(m.get("augmented_per_tick"), 0.0);
}

TEST(RunSimulation, Connected0SetWhenDenseDrawConnects) {
  const auto m = run_simulation(quick_config(150, 2));
  EXPECT_DOUBLE_EQ(m.get("connected0"), 1.0);
}

TEST(RunSimulation, SparseRetryLoopActuallyRetries) {
  // With retries enabled the runner must land on a different deployment than
  // the single-attempt run of the same base seed (the derived-seed retry
  // path was unreachable before the fix).
  auto one = quick_config(80, 5);
  one.target_degree = 2.0;
  one.connect_attempts = 1;
  one.duration = 5.0;
  auto many = one;
  many.connect_attempts = 8;
  const auto a = run_simulation(one);
  const auto b = run_simulation(many);
  EXPECT_NE(a.get("f0"), b.get("f0"));
}

TEST(RunSimulation, TickCountExactOnLongFractionalHorizons) {
  // 0.1 has no exact binary representation; the old warmup/tick loops
  // accumulated it and could drift a full tick off over long horizons. The
  // measured sample count must be exactly duration / tick.
  auto cfg = quick_config(60, 31);
  cfg.tick = 0.1;
  cfg.warmup = 12.3;
  cfg.duration = 30.0;
  const auto m = run_simulation(cfg);
  EXPECT_DOUBLE_EQ(m.get("ticks"), 300.0);

  cfg.duration = 60.0;
  const auto longer = run_simulation(cfg);
  EXPECT_DOUBLE_EQ(longer.get("ticks"), 600.0);
}

TEST(RunSimulation, GroupMobilityRuns) {
  auto cfg = quick_config(160, 24);
  cfg.mobility = MobilityKind::kGroup;
  cfg.group_size = 20;
  const auto m = run_simulation(cfg);
  EXPECT_GT(m.get("total_rate"), 0.0);
  EXPECT_GT(m.get("f0"), 0.0);
}

TEST(RunSimulation, StaticMobilityHasNoHandoff) {
  auto cfg = quick_config(150, 8);
  cfg.mobility = MobilityKind::kStatic;
  const auto m = run_simulation(cfg);
  EXPECT_DOUBLE_EQ(m.get("phi_rate"), 0.0);
  EXPECT_DOUBLE_EQ(m.get("gamma_rate"), 0.0);
  EXPECT_DOUBLE_EQ(m.get("f0"), 0.0);
}

TEST(RunSimulation, FasterNodesMoreHandoff) {
  auto slow = quick_config(180, 9);
  slow.mu = 0.5;
  auto fast = quick_config(180, 9);
  fast.mu = 2.0;
  const auto ms = run_simulation(slow);
  const auto mf = run_simulation(fast);
  EXPECT_GT(mf.get("f0"), ms.get("f0"));
  EXPECT_GT(mf.get("total_rate"), ms.get("total_rate"));
}

}  // namespace
}  // namespace manet::exp
