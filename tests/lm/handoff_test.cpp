#include "lm/handoff.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "cluster/hierarchy_builder.hpp"
#include "common/rng.hpp"
#include "geom/region.hpp"
#include "mobility/random_waypoint.hpp"
#include "net/unit_disk.hpp"

namespace manet::lm {
namespace {

struct World {
  geom::DiskRegion disk{geom::Vec2{0, 0}, 1.0};
  std::vector<geom::Vec2> pts;
  net::UnitDiskBuilder builder{2.2, true};
  cluster::HierarchyBuilder hb;
  graph::Graph g{0};
  cluster::Hierarchy h;

  explicit World(Size n, std::uint64_t seed)
      : disk(geom::DiskRegion::with_density(n, 1.0)) {
    common::Xoshiro256 rng(seed);
    pts.resize(n);
    for (auto& p : pts) p = disk.sample(rng);
    refresh();
  }

  void refresh() {
    g = builder.build(pts);
    h = hb.build(g);
  }
};

TEST(HandoffEngine, NoTopologyChangeMeansNoCost) {
  World w(250, 1);
  HandoffEngine engine;
  engine.prime(w.h, 0.0);
  const auto tick = engine.update(w.h, w.g, 1.0);
  EXPECT_EQ(tick.phi_packets, 0u);
  EXPECT_EQ(tick.gamma_packets, 0u);
  EXPECT_EQ(tick.entries_moved, 0u);
  EXPECT_DOUBLE_EQ(engine.phi_rate(), 0.0);
}

TEST(HandoffEngine, PrimePopulatesDatabase) {
  World w(300, 2);
  HandoffEngine engine;
  engine.prime(w.h, 0.0);
  Level top = w.h.top_level();
  ASSERT_GE(top, 2u);
  EXPECT_EQ(engine.database().total_entries(),
            w.g.vertex_count() * (top - kFirstServedLevel + 1));
}

TEST(HandoffEngine, DatabaseStaysConsistentWithAssignments) {
  World w(300, 3);
  HandoffEngine engine;
  engine.prime(w.h, 0.0);

  common::Xoshiro256 rng(4);
  for (int step = 1; step <= 5; ++step) {
    // Perturb ~5% of nodes.
    for (Size v = 0; v < w.pts.size(); v += 20) {
      w.pts[v] += {common::uniform(rng, -1.5, 1.5), common::uniform(rng, -1.5, 1.5)};
      w.pts[v] = w.disk.clamp(w.pts[v]);
    }
    w.refresh();
    engine.update(w.h, w.g, static_cast<Time>(step));

    // Invariant: the database holds exactly one record per (owner, level)
    // at the currently selected server.
    ServerSelectConfig cfg;  // engine default
    Size expected = 0;
    for (NodeId owner = 0; owner < w.g.vertex_count(); ++owner) {
      for (Level k = kFirstServedLevel; k <= w.h.top_level(); ++k) {
        const NodeId server = select_server(w.h, owner, k, cfg);
        const auto* rec = engine.database().find(server, owner, k);
        ASSERT_NE(rec, nullptr) << "missing record owner=" << owner << " level=" << k
                                << " step=" << step;
        ++expected;
      }
    }
    EXPECT_EQ(engine.database().total_entries(), expected);
  }
}

TEST(HandoffEngine, MovementProducesPhiAndGamma) {
  World w(400, 5);
  HandoffEngine engine;
  engine.prime(w.h, 0.0);
  mobility::RandomWaypoint model(w.disk, 0, mobility::RandomWaypoint::Params::fixed_speed(1.0),
                                 6);  // unused; we perturb manually for determinism
  common::Xoshiro256 rng(7);
  for (int step = 1; step <= 10; ++step) {
    for (auto& p : w.pts) {
      p += {common::uniform(rng, -1.0, 1.0), common::uniform(rng, -1.0, 1.0)};
      p = w.disk.clamp(p);
    }
    w.refresh();
    engine.update(w.h, w.g, static_cast<Time>(step));
  }
  EXPECT_GT(engine.total_phi(), 0u);
  EXPECT_GT(engine.total_gamma(), 0u);
  EXPECT_GT(engine.phi_rate(), 0.0);
  EXPECT_GT(engine.gamma_rate(), 0.0);
  // Per-level rates must sum to the totals.
  double phi_sum = 0.0, gamma_sum = 0.0;
  for (Level k = 0; k < engine.per_level().size(); ++k) {
    phi_sum += engine.phi_rate_at(k);
    gamma_sum += engine.gamma_rate_at(k);
  }
  EXPECT_NEAR(phi_sum, engine.phi_rate(), 1e-9);
  EXPECT_NEAR(gamma_sum, engine.gamma_rate(), 1e-9);
}

TEST(HandoffEngine, UnitMetricCountsEntriesNotHops) {
  World w(300, 8);
  HandoffConfig config;
  config.metric = HopMetric::kUnit;
  HandoffEngine engine(config);
  engine.prime(w.h, 0.0);
  common::Xoshiro256 rng(9);
  Size moved_total = 0;
  PacketCount packets_total = 0;
  for (int step = 1; step <= 5; ++step) {
    for (Size v = 0; v < w.pts.size(); v += 10) {
      w.pts[v] += {common::uniform(rng, -2.0, 2.0), common::uniform(rng, -2.0, 2.0)};
      w.pts[v] = w.disk.clamp(w.pts[v]);
    }
    w.refresh();
    const auto tick = engine.update(w.h, w.g, static_cast<Time>(step));
    moved_total += tick.entries_moved;
    packets_total += tick.phi_packets + tick.gamma_packets;
  }
  EXPECT_EQ(packets_total, moved_total);  // every move costs exactly 1
}

TEST(HandoffEngine, MigrationCountsTrackAncestorChanges) {
  World w(250, 10);
  HandoffEngine engine;
  engine.prime(w.h, 0.0);
  const auto before = w.h;
  // Move a block of nodes far across the region.
  for (Size v = 0; v < 25; ++v) w.pts[v] = w.disk.clamp(w.pts[v] + geom::Vec2{8.0, 8.0});
  w.refresh();
  engine.update(w.h, w.g, 1.0);

  Size expected = 0;
  const Level common_top = std::min(before.top_level(), w.h.top_level());
  for (NodeId v = 0; v < w.g.vertex_count(); ++v) {
    for (Level k = 1; k <= common_top; ++k) {
      if (before.ancestor_id(v, k) != w.h.ancestor_id(v, k)) ++expected;
    }
  }
  Size measured = 0;
  for (Level k = 1; k <= common_top; ++k) measured += engine.migration_count(k);
  EXPECT_EQ(measured, expected);
}

TEST(HandoffEngine, ElapsedTracksUpdates) {
  World w(150, 11);
  HandoffEngine engine;
  engine.prime(w.h, 5.0);
  engine.update(w.h, w.g, 7.5);
  EXPECT_DOUBLE_EQ(engine.elapsed(), 2.5);
}

TEST(HandoffEngineDeath, UpdateBeforePrime) {
  World w(100, 12);
  HandoffEngine engine;
  EXPECT_DEATH(engine.update(w.h, w.g, 1.0), "prime");
}

TEST(HandoffEngineDeath, TimeMustBeMonotone) {
  World w(100, 13);
  HandoffEngine engine;
  engine.prime(w.h, 5.0);
  EXPECT_DEATH(engine.update(w.h, w.g, 4.0), "monotone");
}

}  // namespace
}  // namespace manet::lm
