#pragma once

#include <cstdint>
#include <string_view>

/// \file hash.hpp
/// Non-cryptographic mixing functions used by the location-management layer.
///
/// CHLM (Section 3.2 of the paper) requires a hash that (a) selects a server
/// unambiguously given only node ID + candidate set, and (b) spreads server
/// duty equitably. The paper leaves the concrete function open ("the specific
/// implementation is not crucial"); we use strong 64-bit mixers feeding
/// rendezvous hashing (see lm/rendezvous.hpp).

namespace manet::common {

/// Stafford variant 13 finalizer of MurmurHash3; a bijective 64-bit mixer.
std::uint64_t mix64(std::uint64_t x) noexcept;

/// Combine two 64-bit words into one well-mixed word (order sensitive).
std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) noexcept;

/// FNV-1a over a byte string; used for salting hash domains by name.
std::uint64_t fnv1a(std::string_view bytes) noexcept;

}  // namespace manet::common
