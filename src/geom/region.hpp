#pragma once

#include "common/rng.hpp"
#include "geom/vec2.hpp"

/// \file region.hpp
/// Deployment regions. The paper assumes nodes uniformly distributed over a
/// circular area whose size grows linearly with |V| so that node density is
/// constant (Section 1.2). DiskRegion implements exactly that; SquareRegion
/// exists for the GLS grid baseline (Section 3.1), whose hierarchy is defined
/// over a square.

namespace manet::geom {

/// Abstract planar deployment region.
class Region {
 public:
  virtual ~Region() = default;

  /// True iff \p p lies inside (or on the boundary of) the region.
  virtual bool contains(Vec2 p) const = 0;

  /// Uniform random point inside the region.
  virtual Vec2 sample(common::Xoshiro256& rng) const = 0;

  /// Region area in m^2.
  virtual double area() const = 0;

  /// Geometric center.
  virtual Vec2 center() const = 0;

  /// Clamp a point to the closest point inside the region. Used by mobility
  /// models whose integration step may momentarily overshoot the boundary.
  virtual Vec2 clamp(Vec2 p) const = 0;
};

/// Circular region of given center and radius.
class DiskRegion final : public Region {
 public:
  DiskRegion(Vec2 center, double radius);

  /// Disk centered at origin sized so that `n` nodes at `density` nodes/m^2
  /// fit: area = n / density. This is the paper's constant-density scaling.
  static DiskRegion with_density(std::size_t n_nodes, double density);

  bool contains(Vec2 p) const override;
  Vec2 sample(common::Xoshiro256& rng) const override;
  double area() const override;
  Vec2 center() const override { return center_; }
  Vec2 clamp(Vec2 p) const override;

  double radius() const { return radius_; }

 private:
  Vec2 center_;
  double radius_;
};

/// Axis-aligned square region [origin, origin + side]^2.
class SquareRegion final : public Region {
 public:
  SquareRegion(Vec2 origin, double side);

  static SquareRegion with_density(std::size_t n_nodes, double density);

  bool contains(Vec2 p) const override;
  Vec2 sample(common::Xoshiro256& rng) const override;
  double area() const override;
  Vec2 center() const override;
  Vec2 clamp(Vec2 p) const override;

  Vec2 origin() const { return origin_; }
  double side() const { return side_; }

 private:
  Vec2 origin_;
  double side_;
};

}  // namespace manet::geom
