/// Quickstart: the full pipeline in one page.
///
/// 1. Deploy nodes uniformly in a disk (constant density).
/// 2. Build the unit-disk radio graph.
/// 3. Cluster it recursively with the ALCA into a multi-level hierarchy.
/// 4. Stand up CHLM location servers for every node at every level >= 2.
/// 5. Move everyone with random waypoint for a minute and account every
///    LM handoff packet, exactly as the paper's analysis defines it.
///
/// Build and run:  ./build/examples/quickstart [n]

#include <cstdio>
#include <cstdlib>

#include "exp/simulation.hpp"
#include "lm/address.hpp"
#include "lm/overhead.hpp"

int main(int argc, char** argv) {
  using namespace manet;

  const Size n = argc > 1 ? static_cast<Size>(std::atoi(argv[1])) : 256;

  exp::ScenarioConfig cfg;
  cfg.n = n;
  cfg.mu = 1.0;                                      // 1 m/s random waypoint
  cfg.radius_policy = exp::RadiusPolicy::kMeanDegree;  // fixed R_TX, d ~ 12
  cfg.warmup = 10.0;
  cfg.duration = 60.0;
  cfg.seed = 7;

  std::printf("scenario: %s\n\n", cfg.describe().c_str());

  const exp::RunMetrics m = exp::run_simulation(cfg);

  std::printf("hierarchy: %.1f clustered levels on average\n", m.get("levels"));
  std::printf("LM database: %.2f entries/node (theory: ~L-1), load gini %.3f\n",
              m.get("entries_per_node"), m.get("load_gini"));
  std::printf("\nlink dynamics: f0 = %.3f link events/node/s (paper eq. 4: Theta(1))\n",
              m.get("f0"));

  std::printf("\nhandoff overhead (packet transmissions per node per second):\n");
  std::printf("  phi   (node migration, paper Sec. 4) = %.4f\n", m.get("phi_rate"));
  std::printf("  gamma (reorganization, paper Sec. 5) = %.4f\n", m.get("gamma_rate"));
  std::printf("  total                                = %.4f\n", m.get("total_rate"));

  std::printf("\nper-level breakdown:\n  %-6s %-10s %-10s %-10s\n", "level", "phi_k",
              "gamma_k", "f_k");
  for (Level k = 1; k <= 10; ++k) {
    char key[32];
    std::snprintf(key, sizeof(key), "phi_k.%u", k);
    if (!m.has(key)) break;
    const double phik = m.get(key);
    std::snprintf(key, sizeof(key), "gamma_k.%u", k);
    const double gammak = m.get(key);
    std::snprintf(key, sizeof(key), "f_k.%u", k);
    const double fk = m.get(key);
    std::printf("  %-6u %-10.4f %-10.4f %-10.4f\n", k, phik, gammak, fk);
  }

  std::printf(
      "\nThe paper's claim: both phi and gamma grow as Theta(log^2 n).\n"
      "Try ./quickstart 1024 and compare against this run.\n");
  return 0;
}
