#pragma once

#include <cstdint>
#include <vector>

#include "common/arena.hpp"
#include "geom/spatial_grid.hpp"
#include "geom/vec2.hpp"
#include "graph/graph.hpp"
#include "net/link_tracker.hpp"
#include "net/radio.hpp"
#include "sim/node_state.hpp"
#include "sim/shard.hpp"

/// \file unit_disk.hpp
/// Unit-disk graph construction: G = (V, E) with e = (u, v) in E iff
/// |p_u - p_v| <= R_TX. Built through a spatial hash grid, so topology
/// resampling is O(|V| + |E|) expected — the inner loop of every mobile
/// experiment.
///
/// Two entry points are provided:
///   - build():  stateless full rescan (the historical path);
///   - update(): incremental delta maintenance. Only nodes whose position
///     changed since the previous update() are re-evaluated, and the builder
///     reports the resulting edge ups/downs plus whether the graph changed
///     at all. The edge set is maintained *exactly* (membership is always
///     decided by the true current distance), so update() is bit-identical
///     to a full rebuild at every tick — the change-gated tick pipeline in
///     exp/simulation.cpp relies on this.

namespace manet::net {

/// One-shot build (allocates its own grid).
graph::Graph build_unit_disk_graph(const std::vector<geom::Vec2>& positions, double tx_radius);

/// Reusable builder: keeps the spatial grid, adjacency and edge buffers
/// across ticks.
class UnitDiskBuilder {
 public:
  /// \p ensure_connected: when the sampled unit-disk graph fragments
  /// (mobile boundary nodes drift out of range), bridge every minor
  /// component to the giant one through its geometrically closest node
  /// pair. This enforces the paper's standing assumption that G is
  /// connected (Section 1.2) — physically, a node briefly out of range
  /// still reaches the network through its nearest neighbor at a higher
  /// power level. The number of augmented edges per snapshot is reported
  /// so experiments can verify the correction stays marginal.
  ///
  /// \p slack_factor: grid-anchoring slack for the incremental path, as a
  /// fraction of R_TX. A node's grid bucket is refreshed only once it has
  /// drifted more than slack from its anchored position; neighbor queries
  /// widen their radius by the same slack so no candidate is ever missed.
  /// The slack trades grid-maintenance churn against slightly larger
  /// candidate sets — it never affects the produced edge set, which is
  /// always decided by exact current distances.
  explicit UnitDiskBuilder(double tx_radius, bool ensure_connected = false,
                           double slack_factor = 0.5);

  /// Full rescan. Invalidates any incremental state, so interleaving
  /// build() and update() is safe (the next update() re-seeds itself).
  graph::Graph build(const std::vector<geom::Vec2>& positions);

  /// Incremental maintenance: re-evaluates only nodes whose position
  /// changed since the last update() (exact comparison — bit-identity
  /// forbids a movement threshold here) and returns the maintained graph.
  /// The first call, a node-count change, or a call after build() seeds a
  /// full rescan. When strictly more than a quarter of the nodes moved
  /// (the exact test 4 * moved > n, no integer-division truncation), the
  /// builder falls back to a full rescan internally (cheaper than point
  /// updates, still emitting an exact delta).
  const graph::Graph& update(const std::vector<geom::Vec2>& positions);

  /// Shard the heavy update() phases — full-rescan pair enumeration,
  /// per-moved-node neighborhood recomputation, edge-buffer refresh,
  /// fallback edge diffing — over \p executor (nullptr = sequential, the
  /// default). Sharding is by shard index with per-shard outputs
  /// concatenated in shard order, so the maintained graph and the ups/downs
  /// delta are bit-identical to the sequential build at any shard count x
  /// any thread count (the executor's shard_count() is a pure throughput
  /// knob here).
  void set_parallel(sim::ShardExecutor* executor) noexcept { par_ = executor; }

  /// True when the last update() took a full-rescan path (a (re)seed or the
  /// exact > n/4 fallback) rather than point updates. Test hook for the
  /// rescan-threshold boundary contract.
  bool last_full_rescan() const { return full_rescan_; }

  /// The graph maintained by update(). Valid until the next build()/update().
  const graph::Graph& graph() const { return augmented_ ? aug_graph_ : raw_graph_; }

  /// Whether the last update() changed the edge set (including augmentation
  /// bridges). The first update() after a (re)seed reports true.
  bool changed() const { return changed_; }

  /// Nodes whose position changed in the last update().
  Size last_moved_nodes() const { return last_moved_; }

  /// Raw unit-disk edge ups/downs from the last update() (canonical u < v
  /// pairs; augmentation bridges are excluded). After an internal full
  /// rescan these are the exact diff against the previous edge set.
  const std::vector<graph::Edge>& links_up() const { return ups_; }
  const std::vector<graph::Edge>& links_down() const { return downs_; }

  double tx_radius() const { return tx_radius_; }

  /// Edges added by connectivity augmentation in the last build()/update()
  /// snapshot (update() carries the standing count across unchanged ticks).
  Size last_augmented_edges() const { return last_augmented_; }

  /// The SoA node state maintained by the incremental path (committed
  /// positions, last-step displacement, anchored grid buckets). Valid while
  /// the incremental state is seeded — i.e. after any update().
  const sim::NodeStateSoA& node_state() const { return state_; }

 private:
  /// Re-seed all incremental state from a full rescan of \p positions.
  void full_reset(const std::vector<geom::Vec2>& positions);
  /// Rebuild raw_graph_ (when \p raw_dirty) and the augmentation layer;
  /// sets changed_ / last_augmented_.
  void refresh_graphs(bool raw_dirty);
  /// Append the component bridges for \p raw to \p bridges (closest-pair
  /// rule; shared by the full and incremental paths).
  void compute_bridges(const std::vector<geom::Vec2>& positions, const graph::Graph& raw,
                       std::vector<graph::Edge>& bridges) const;
  /// Recompute moved node \p u's exact neighborhood and diff it against the
  /// maintained adjacency, appending to \p ups / \p downs (the point-update
  /// inner body; pure per-u given phase-1 state, so shards run it
  /// concurrently with per-shard scratch and output buffers).
  void recompute_moved(NodeId u, std::vector<NodeId>& nbr, std::vector<NodeId>& fresh,
                       std::vector<graph::Edge>& ups, std::vector<graph::Edge>& downs) const;

  double tx_radius_;
  bool ensure_connected_;
  double slack_;
  geom::SpatialGrid grid_;
  std::vector<graph::Edge> edge_buffer_;
  Size last_augmented_ = 0;

  /// Refresh state_'s anchored-cell array from the (just rebuilt) grid;
  /// sharded over par_ when attached (independent per-node writes).
  void refresh_cells();

  // --- Incremental state (valid while inc_valid_) ---
  bool inc_valid_ = false;
  /// Positions at the last update(), SoA (hot distance-loop operands), plus
  /// last-step displacement and anchored grid buckets. Replaces the old AoS
  /// cur_pos_ mirror; cold paths bridge back through write_back().
  sim::NodeStateSoA state_;
  std::vector<geom::Vec2> anchor_pos_;     ///< positions the grid is built over
  std::vector<geom::Vec2> pos_scratch_;    ///< AoS bridge for cold paths
  std::vector<std::vector<NodeId>> adj_;   ///< sorted raw adjacency lists
  std::vector<std::uint8_t> stale_;        ///< drifted > slack from anchor
  std::vector<NodeId> stale_list_;
  std::vector<std::uint8_t> moved_now_;
  graph::Graph raw_graph_;
  graph::Graph aug_graph_;
  std::vector<graph::Edge> bridges_;
  bool augmented_ = false;
  bool changed_ = false;
  bool full_rescan_ = false;
  Size last_moved_ = 0;
  std::vector<graph::Edge> ups_, downs_;
  // Scratch reused across ticks so steady-state updates allocate nothing.
  std::vector<NodeId> moved_scratch_, nbr_scratch_, new_nbrs_;
  std::vector<graph::Edge> old_edges_scratch_, bridge_scratch_, combine_scratch_;
  // Sharded-update state (inert while par_ == nullptr). Per-shard output
  // and scratch buffers, reused across ticks like the sequential scratch.
  sim::ShardExecutor* par_ = nullptr;
  std::vector<std::vector<graph::Edge>> shard_pairs_, shard_ups_, shard_downs_;
  std::vector<std::vector<NodeId>> shard_nbr_, shard_fresh_;
  ShardedEdgeDiff diff_;
  /// Bump arena for the augmentation path's transients (component sizes,
  /// giant-component node list); rewound at the top of each build()/update().
  /// Mutable because compute_bridges() is logically const.
  mutable common::ArenaScratch arena_;
};

}  // namespace manet::net
