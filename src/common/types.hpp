#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>

/// \file types.hpp
/// Fundamental identifier and time types shared across all manet subsystems.

namespace manet {

/// Unique node identifier. Per the ALCA (Baker & Ephremides 1981) clusterhead
/// election analyzed in the paper, IDs are totally ordered and election is
/// ID-based: larger ID wins. IDs are dense [0, n) indices into per-node
/// arrays throughout the library.
using NodeId = std::uint32_t;

/// Sentinel for "no node".
inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

/// Hierarchy level index. Level 0 is the physical node level (V_0 = V);
/// level k >= 1 are clusterhead levels produced by recursive ALCA election.
using Level = std::uint32_t;

/// Simulation time in seconds.
using Time = double;

/// Count of packet transmissions (one packet traversing one level-0 hop).
/// The paper's overhead unit is "packet transmissions per node per second".
using PacketCount = std::uint64_t;

/// Convenience: number of nodes / clusters / entries.
using Size = std::size_t;

}  // namespace manet
