#include "lm/database.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace manet::lm {

LmDatabase::LmDatabase(Size n_nodes) { reset(n_nodes); }

void LmDatabase::reset(Size n_nodes) {
  stores_.assign(n_nodes, {});
  total_ = 0;
}

void LmDatabase::put(NodeId server, LocationRecord record) {
  MANET_CHECK(server < stores_.size());
  MANET_CHECK(record.owner != kInvalidNode);
  if (stores_[server].insert_or_assign(key(record.owner, record.level), record)) ++total_;
}

LocationRecord LmDatabase::take(NodeId server, NodeId owner, Level level) {
  MANET_CHECK(server < stores_.size());
  auto& store = stores_[server];
  const std::uint64_t k = key(owner, level);
  const LocationRecord* found = store.find(k);
  if (found == nullptr) return LocationRecord{};
  LocationRecord record = *found;
  store.erase(k);
  --total_;
  return record;
}

const LocationRecord* LmDatabase::find(NodeId server, NodeId owner, Level level) const {
  MANET_CHECK(server < stores_.size());
  return stores_[server].find(key(owner, level));
}

std::vector<LocationRecord> LmDatabase::drop_all(NodeId server) {
  MANET_CHECK(server < stores_.size());
  auto& store = stores_[server];
  std::vector<LocationRecord> out;
  out.reserve(store.size());
  for (const auto& e : store) out.push_back(e.value);
  total_ -= store.size();
  store.clear();
  std::sort(out.begin(), out.end(), [](const LocationRecord& a, const LocationRecord& b) {
    return a.owner != b.owner ? a.owner < b.owner : a.level < b.level;
  });
  return out;
}

Size LmDatabase::entry_count(NodeId server) const {
  MANET_CHECK(server < stores_.size());
  return stores_[server].size();
}

std::vector<Size> LmDatabase::load_vector() const {
  std::vector<Size> out(stores_.size());
  for (Size v = 0; v < stores_.size(); ++v) out[v] = stores_[v].size();
  return out;
}

LoadStats load_stats(const std::vector<Size>& loads) {
  LoadStats out;
  if (loads.empty()) return out;
  const Size n = loads.size();
  double sum = 0.0, sum2 = 0.0, mx = 0.0;
  for (const Size l : loads) {
    const auto d = static_cast<double>(l);
    sum += d;
    sum2 += d * d;
    mx = std::max(mx, d);
  }
  const double dn = static_cast<double>(n);
  out.mean = sum / dn;
  out.max = mx;
  out.variance = std::max(0.0, sum2 / dn - out.mean * out.mean);
  // Gini via the sorted-rank formula: G = (2*sum_i i*x_(i) / (n*sum x)) -
  // (n+1)/n, with 1-based ranks over ascending x.
  if (sum > 0.0) {
    std::vector<Size> sorted = loads;
    std::sort(sorted.begin(), sorted.end());
    double weighted = 0.0;
    for (Size i = 0; i < n; ++i) {
      weighted += static_cast<double>(i + 1) * static_cast<double>(sorted[i]);
    }
    out.gini = 2.0 * weighted / (dn * sum) - (dn + 1.0) / dn;
  }
  return out;
}

}  // namespace manet::lm
