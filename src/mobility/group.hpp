#pragma once

#include "common/rng.hpp"
#include "mobility/model.hpp"

/// \file group.hpp
/// Reference Point Group Mobility (RPGM; Hong et al. 1999 — the group-motion
/// scenario HSR [11] targets, cited by the paper as a motivation for
/// hierarchical clustering). Nodes are partitioned into groups; each group's
/// *reference point* performs random waypoint, and members jitter inside a
/// disk around it. Group-correlated motion is the best case for a clustered
/// hierarchy: clusters align with groups, so cluster-boundary crossings —
/// and hence LM handoff — drop relative to independent motion (experiment
/// E23 in bench_sensitivity/gls comparisons).

namespace manet::mobility {

class ReferencePointGroup final : public MobilityModel {
 public:
  struct Params {
    Size group_size = 16;       ///< nodes per group (last group may be smaller)
    double leader_speed = 1.0;  ///< m/s, reference-point random waypoint speed
    double member_radius = 0.0; ///< jitter disk radius; 0 => 2 * spacing heuristic
    double member_speed = 0.5;  ///< m/s, motion around the reference point
  };

  ReferencePointGroup(const geom::Region& region, Size n, Params params,
                      std::uint64_t seed);

  void advance_to(Time t) override;
  const std::vector<geom::Vec2>& positions() const override { return positions_; }
  Time now() const override { return now_; }
  Size node_count() const override { return positions_.size(); }
  const char* name() const override { return "rpgm"; }

  Size group_count() const { return leaders_.size(); }
  Size group_of(NodeId v) const { return group_of_[v]; }
  geom::Vec2 reference_point(Size group) const;

 private:
  struct Leader {
    geom::Vec2 origin;  ///< position at leg start
    geom::Vec2 dest;    ///< waypoint
    Time depart = 0.0;
    Time arrive = 0.0;
  };

  geom::Vec2 leader_pos(const Leader& leader, Time t) const;
  struct Member {
    geom::Vec2 offset;       ///< current offset from the reference point
    geom::Vec2 offset_dest;  ///< offset waypoint inside the jitter disk
  };

  void leader_new_leg(Size group, Time at);

  const geom::Region& region_;
  Params params_;
  std::vector<common::Xoshiro256> rngs_;  ///< one per group
  std::vector<Leader> leaders_;
  std::vector<Member> members_;
  std::vector<Size> group_of_;
  std::vector<geom::Vec2> positions_;
  double jitter_radius_;
  Time now_ = 0.0;
};

}  // namespace manet::mobility
