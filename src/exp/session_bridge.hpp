#pragma once

#include <vector>

#include "lm/handoff.hpp"
#include "lm/handover_fsm.hpp"
#include "traffic/sessions.hpp"

/// \file session_bridge.hpp
/// Binds the session workload's LocatorView to the live LM plane. The
/// adapter lives in exp/ because traffic/ sits *below* lm/ in the library
/// layering (traffic -> routing; lm -> routing) — only exp/ links both.
///
/// Resolution walks every served level k in [2, top] for the destination and
/// keeps the best answer (kFresh > kStaleHit > kMiss):
///   - an entry the engine flags stale resolves through its out-of-date
///     holder (kStaleHit -> the packet misroutes through the holder), or not
///     at all when the copy is gone;
///   - an entry with an in-flight handover procedure is served by the *old*
///     server's retained copy (make-before-break: kFresh while the procedure
///     is still signalling, kStaleHit once it rolled back and the pinned
///     copy went out of date);
///   - otherwise the current assignment server answers (kFresh) when it is
///     up and actually holds the record.

namespace manet::exp {

class LmSessionLocator : public traffic::LocatorView {
 public:
  /// \p manager and \p down are optional (nullptr); \p engine must outlive
  /// the locator.
  LmSessionLocator(const lm::HandoffEngine& engine, const lm::HandoverManager* manager,
                   const std::vector<std::uint8_t>* down)
      : engine_(engine), manager_(manager), down_(down) {}

  traffic::LocateOutcome locate(NodeId dst) override;

 private:
  bool is_down(NodeId v) const {
    return down_ != nullptr && v < down_->size() && (*down_)[v] != 0;
  }

  const lm::HandoffEngine& engine_;
  const lm::HandoverManager* manager_;
  const std::vector<std::uint8_t>* down_;
};

}  // namespace manet::exp
