#pragma once

#include <vector>

#include "common/metrics.hpp"
#include "common/rng.hpp"
#include "routing/table.hpp"

/// \file sessions.hpp
/// Data-plane session workload in two modes.
///
/// Legacy trains (tick()): Poisson unicast session arrivals between uniform
/// random pairs, each carrying a packet train routed over *strict
/// hierarchical routing* (not idealized shortest paths — stretch and
/// recovery detours are charged). This is the denominator of the paper's
/// Section-6 significance claim: LM control overhead must vanish relative
/// to the data load the network exists to carry (experiment E19).
///
/// Long-lived sessions (tick_sessions()): sessions persist across ticks and
/// every per-tick packet first *resolves* its destination through a
/// LocatorView (the live LM database + handover FSM plane) before routing.
/// Handoffs therefore have user-visible consequences (experiment E29):
///   - a resolution served by a stale / rolled-back copy misroutes the
///     packet through the out-of-date holder before reaching the
///     destination (packets_misrouted, misroute_extra);
///   - a resolution miss (every serving copy dark) loses the packet and
///     opens a per-session *interruption window*, closed by the next
///     delivered packet — window lengths feed the interruption-time
///     distribution whose p99 the bench gate enforces.

namespace manet::traffic {

struct SessionConfig {
  double sessions_per_node_per_sec = 0.2;
  Size packets_per_session = 10;  ///< train length (legacy tick() mode)
  // Long-lived mode (tick_sessions()):
  double mean_duration = 4.0;   ///< exponential session lifetime, s
  double packets_per_sec = 4.0; ///< per-session offered packet rate
};

/// Destination-resolution outcome for one packet, ordered worst-to-best so
/// multi-level resolution can keep the max.
enum class LocateResult : std::uint8_t {
  kMiss = 0,   ///< no serving copy reachable — the packet is lost
  kStaleHit,   ///< answered by an out-of-date copy — the packet misroutes
  kFresh,      ///< answered by a live, current copy
};

struct LocateOutcome {
  LocateResult result = LocateResult::kMiss;
  NodeId server = kInvalidNode;  ///< answering server (query-latency pricing)
  NodeId holder = kInvalidNode;  ///< stale-copy holder on kStaleHit (misroute target)
};

/// How a packet finds its destination. Implemented over the LM plane by
/// exp::LmSessionLocator; traffic/ stays below lm/ in the layering, so only
/// this interface lives here. nullptr in TickContext = always fresh
/// (idealized resolution, the legacy behavior).
class LocatorView {
 public:
  virtual ~LocatorView() = default;
  virtual LocateOutcome locate(NodeId dst) = 0;
};

struct SessionStats {
  Size sessions = 0;
  Size undeliverable = 0;          ///< routing failures (should be 0)
  Size recovered = 0;              ///< sessions that used recovery forwarding
  PacketCount data_transmissions = 0;
  double window = 0.0;             ///< accumulated seconds

  /// Ticks skipped because fewer than 2 nodes were available (crash faults
  /// can shrink the alive set; skipping beats aborting the run).
  Size skipped_ticks = 0;

  // Long-lived continuity accounting (tick_sessions() only).
  Size packets_offered = 0;
  Size packets_delivered = 0;
  Size packets_misrouted = 0;      ///< resolved via a stale / rolled-back copy
  Size packets_lost = 0;           ///< resolution miss, dark endpoint, route failure
  PacketCount misroute_extra = 0;  ///< chase-leg transmissions to stale holders
  Size interruptions = 0;          ///< interruption windows opened
  double interruption_time = 0.0;  ///< summed window lengths, s

  /// Data-plane packet transmissions per node per second.
  double rate(Size node_count) const;
  /// Mean data transmissions per delivered session (= packet train length
  /// times the routed path length).
  double mean_transmissions_per_session() const;
  /// Fraction of offered packets that misrouted via a stale copy.
  double misroute_rate() const;
  /// Fraction of offered packets lost outright.
  double loss_rate() const;
};

class SessionWorkload {
 public:
  SessionWorkload(SessionConfig config, std::uint64_t seed);

  /// Legacy mode: generate Poisson(n * rate * dt) sessions between uniform
  /// random pairs and route each train over \p tables; accumulate the
  /// transmission count. Skips (and counts) the tick when node_count < 2.
  void tick(const routing::RoutingTables& tables, Size node_count, Time dt);

  /// Long-lived mode inputs for one tick. `tables` is required; `locator`
  /// and `down` are optional (nullptr = idealized resolution / nobody down).
  struct TickContext {
    const routing::RoutingTables* tables = nullptr;
    LocatorView* locator = nullptr;
    const std::vector<std::uint8_t>* down = nullptr;
    Size node_count = 0;
    Time now = 0.0;
    Time dt = 1.0;
  };

  /// Long-lived mode: expire finished sessions, admit Poisson arrivals,
  /// then send each live session's per-tick packets through locator +
  /// routing. Skips (and counts) the tick when node_count < 2.
  void tick_sessions(const TickContext& ctx);

  /// Close any interruption window still open (sessions interrupted at run
  /// end would otherwise never report their window). Call once after the
  /// final tick.
  void finish(Time now);

  Size live_sessions() const { return live_.size(); }
  const SessionStats& stats() const { return stats_; }

  /// Publish session.* instruments (counters + the interruption / query-hop
  /// histograms) into \p registry. nullptr = off, zero cost.
  void set_metrics(common::MetricsRegistry* registry);

  /// Nearest-rank quantile over *closed* interruption windows. Quiet NaN —
  /// the repo's "metric absent" sentinel — when none closed yet: an
  /// uninterrupted run has no p99, and a 0.0 placeholder would silently
  /// drag down campaign aggregates. Artifact writers round-trip the NaN as
  /// JSON null (exp/artifacts.cpp).
  double interruption_quantile(double q) const;
  const std::vector<double>& interruption_windows() const { return windows_; }

 private:
  struct Live {
    NodeId src = kInvalidNode;
    NodeId dst = kInvalidNode;
    Time ends_at = 0.0;
    bool interrupted = false;
    Time interrupted_since = 0.0;
  };

  bool is_down(const TickContext& ctx, NodeId v) const {
    return ctx.down != nullptr && v < ctx.down->size() && (*ctx.down)[v] != 0;
  }
  /// One packet of \p session; returns true when delivered.
  bool send_packet(Live& session, const TickContext& ctx);
  void close_window(Live& session, Time now);

  SessionConfig config_;
  common::Xoshiro256 rng_;
  SessionStats stats_;
  std::vector<Live> live_;
  std::vector<double> windows_;  ///< closed interruption window lengths, s

  common::Counter* offered_c_ = nullptr;
  common::Counter* delivered_c_ = nullptr;
  common::Counter* misrouted_c_ = nullptr;
  common::Counter* lost_c_ = nullptr;
  common::Histogram* interruption_h_ = nullptr;
  common::Histogram* query_hops_h_ = nullptr;
};

}  // namespace manet::traffic
