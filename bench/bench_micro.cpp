/// E15: microbenchmarks of the simulator's hot paths (google-benchmark).
/// These are the costs that bound how large a scenario one core can carry:
/// unit-disk graph construction, BFS, recursive ALCA hierarchy build,
/// snapshot diffing, handoff accounting, and the hashing primitives.

#include <benchmark/benchmark.h>

#include <vector>

#include "cluster/diff.hpp"
#include "cluster/hierarchy_builder.hpp"
#include "common/rng.hpp"
#include "geom/region.hpp"
#include "graph/bfs.hpp"
#include "lm/handoff.hpp"
#include "lm/rendezvous.hpp"
#include "net/unit_disk.hpp"

namespace manet {
namespace {

std::vector<geom::Vec2> sample_points(Size n, std::uint64_t seed) {
  common::Xoshiro256 rng(seed);
  const auto disk = geom::DiskRegion::with_density(n, 1.0);
  std::vector<geom::Vec2> pts(n);
  for (auto& p : pts) p = disk.sample(rng);
  return pts;
}

void BM_UnitDiskBuild(benchmark::State& state) {
  const auto n = static_cast<Size>(state.range(0));
  const auto pts = sample_points(n, 1);
  net::UnitDiskBuilder builder(2.2, true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(builder.build(pts));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_UnitDiskBuild)->Arg(256)->Arg(1024)->Arg(4096);

void BM_Bfs(benchmark::State& state) {
  const auto n = static_cast<Size>(state.range(0));
  const auto pts = sample_points(n, 2);
  net::UnitDiskBuilder builder(2.2, true);
  const auto g = builder.build(pts);
  graph::BfsScratch scratch;
  NodeId source = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(scratch.run(g, source));
    source = (source + 1) % static_cast<NodeId>(n);
  }
}
BENCHMARK(BM_Bfs)->Arg(256)->Arg(1024)->Arg(4096);

void BM_HierarchyBuild(benchmark::State& state) {
  const auto n = static_cast<Size>(state.range(0));
  const auto pts = sample_points(n, 3);
  net::UnitDiskBuilder builder(2.2, true);
  const auto g = builder.build(pts);
  cluster::HierarchyOptions options;
  options.geometric_links = true;
  options.tx_radius = 2.2;
  const cluster::HierarchyBuilder hb(options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hb.build(g, {}, pts));
  }
}
BENCHMARK(BM_HierarchyBuild)->Arg(256)->Arg(1024)->Arg(4096);

void BM_HierarchyDiff(benchmark::State& state) {
  const auto n = static_cast<Size>(state.range(0));
  auto pts = sample_points(n, 4);
  net::UnitDiskBuilder builder(2.2, true);
  const cluster::HierarchyBuilder hb;
  const auto h1 = hb.build(builder.build(pts));
  for (Size v = 0; v < n; v += 13) pts[v] += {1.0, -0.5};
  const auto h2 = hb.build(builder.build(pts));
  for (auto _ : state) {
    benchmark::DoNotOptimize(cluster::diff_hierarchies(h1, h2));
  }
}
BENCHMARK(BM_HierarchyDiff)->Arg(256)->Arg(1024);

void BM_HandoffUpdate(benchmark::State& state) {
  const auto n = static_cast<Size>(state.range(0));
  auto pts = sample_points(n, 5);
  net::UnitDiskBuilder builder(2.2, true);
  const cluster::HierarchyBuilder hb;
  common::Xoshiro256 rng(6);
  const auto disk = geom::DiskRegion::with_density(n, 1.0);

  // Pre-generate a ring of perturbed snapshots so the measured loop is pure
  // engine work.
  constexpr int kSnapshots = 8;
  std::vector<graph::Graph> graphs;
  std::vector<cluster::Hierarchy> hierarchies;
  for (int s = 0; s < kSnapshots; ++s) {
    for (auto& p : pts) {
      p += {common::uniform(rng, -0.5, 0.5), common::uniform(rng, -0.5, 0.5)};
      p = disk.clamp(p);
    }
    graphs.push_back(builder.build(pts));
    hierarchies.push_back(hb.build(graphs.back()));
  }

  lm::HandoffEngine engine;
  engine.prime(hierarchies[0], 0.0);
  Time t = 0.0;
  int idx = 1;
  for (auto _ : state) {
    t += 1.0;
    benchmark::DoNotOptimize(
        engine.update(hierarchies[static_cast<Size>(idx)],
                      graphs[static_cast<Size>(idx)], t));
    idx = (idx + 1) % kSnapshots;
  }
}
BENCHMARK(BM_HandoffUpdate)->Arg(256)->Arg(1024);

void BM_RendezvousPick(benchmark::State& state) {
  const auto n_candidates = static_cast<Size>(state.range(0));
  std::vector<NodeId> candidates(n_candidates);
  for (NodeId i = 0; i < n_candidates; ++i) candidates[i] = i * 7 + 3;
  NodeId owner = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(lm::rendezvous_pick(42, owner++, candidates));
  }
}
BENCHMARK(BM_RendezvousPick)->Arg(8)->Arg(64);

void BM_SelectServer(benchmark::State& state) {
  const Size n = 1024;
  const auto pts = sample_points(n, 7);
  net::UnitDiskBuilder builder(2.2, true);
  const auto h = cluster::HierarchyBuilder().build(builder.build(pts));
  const lm::ServerSelectConfig config;
  const Level k = std::min<Level>(3, h.top_level());
  NodeId owner = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(lm::select_server(h, owner, k, config));
    owner = (owner + 1) % static_cast<NodeId>(n);
  }
}
BENCHMARK(BM_SelectServer);

}  // namespace
}  // namespace manet

BENCHMARK_MAIN();
