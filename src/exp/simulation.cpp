#include "exp/simulation.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "cluster/diff.hpp"
#include "cluster/hierarchy_builder.hpp"
#include "cluster/repair.hpp"
#include "common/alloc_profile.hpp"
#include "cluster/maxmin.hpp"
#include "cluster/stability.hpp"
#include "cluster/state_chain.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "exp/session_bridge.hpp"
#include "graph/bfs.hpp"
#include "common/hash.hpp"
#include "lm/address.hpp"
#include "lm/gls.hpp"
#include "lm/query_engine.hpp"
#include "lm/overhead.hpp"
#include "lm/registration.hpp"
#include "lm/reliable.hpp"
#include "net/link_tracker.hpp"
#include "net/lossy_channel.hpp"
#include "net/unit_disk.hpp"
#include "routing/table.hpp"
#include "sim/engine.hpp"
#include "sim/fault.hpp"
#include "sim/shard.hpp"

namespace manet::exp {

void RunMetrics::set(std::string name, double value) {
  index_.emplace(name, values.size());  // first occurrence wins
  values.emplace_back(std::move(name), value);
}

double RunMetrics::get(const std::string& name) const {
  const auto it = index_.find(name);
  if (it == index_.end()) return std::numeric_limits<double>::quiet_NaN();
  return values[it->second].second;
}

bool RunMetrics::has(const std::string& name) const {
  // Single lookup (has() used to call get(), doubling the old linear scan);
  // a metric explicitly set to NaN still reads as absent, as before.
  const auto it = index_.find(name);
  return it != index_.end() && !std::isnan(values[it->second].second);
}

namespace {

std::string keyed(const char* base, Level k) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s.%u", base, k);
  return buf;
}

/// The differ's taxonomy enums map 1:1 onto the trace vocabulary ((i)-(vii)
/// in declaration order on both sides).
sim::TraceEventType trace_type_of(cluster::ReorgEventType type) {
  return static_cast<sim::TraceEventType>(
      static_cast<std::uint8_t>(sim::TraceEventType::kReorgLinkUp) +
      static_cast<std::uint8_t>(type));
}

/// Sampled mean level-0 hop count between nodes sharing a level-k cluster
/// (the paper's h_k, eq. (3)).
double measure_hk(const cluster::Hierarchy& h, const graph::Graph& g, Level k, Size pairs,
                  common::Xoshiro256& rng, graph::BfsScratch& bfs) {
  double sum = 0.0;
  Size measured = 0;
  const Size n_clusters = h.cluster_count(k);
  for (Size attempt = 0; attempt < pairs * 4 && measured < pairs; ++attempt) {
    const auto c = static_cast<NodeId>(common::uniform_index(rng, n_clusters));
    const auto& members = h.members0(k, c);
    if (members.size() < 2) continue;
    const NodeId u = members[common::uniform_index(rng, members.size())];
    const NodeId v = members[common::uniform_index(rng, members.size())];
    if (u == v) continue;
    bfs.run(g, u);
    const auto hops = bfs.hops_to(v);
    if (hops == graph::kUnreachable) continue;
    sum += hops;
    ++measured;
  }
  return measured > 0 ? sum / static_cast<double>(measured) : 0.0;
}

}  // namespace

RunMetrics run_simulation(const ScenarioConfig& config, const RunOptions& options) {
  // Allocation accounting (MANET_PROFILE_ALLOC builds only): setup covers
  // everything up to the first measured tick — materialization, the initial
  // hierarchy, warmup — and ticks covers the measured window. Published as
  // alloc.* metrics below; a no-op zero in default builds.
  const auto alloc_at_start = common::alloc_profile::totals();

  // Draw a connected initial deployment (the paper assumes G connected);
  // retry with derived seeds, keep the last draw if none connects.
  //
  // The builder augments every returned graph to connectivity, so testing
  // is_connected() on its output can never fail — which silently disabled
  // this retry loop for years of ticks. Raw-draw connectivity is instead
  // judged by whether augmentation had to add bridges.
  ScenarioConfig cfg = config;
  Scenario scenario = Scenario::materialize(cfg);
  net::UnitDiskBuilder disk(cfg.tx_radius(), /*ensure_connected=*/true);
  graph::Graph g0 = disk.build(scenario.mobility->positions());
  bool raw_connected = disk.last_augmented_edges() == 0;
  for (int attempt = 1; attempt < cfg.connect_attempts && !raw_connected; ++attempt) {
    cfg.seed = common::derive_seed(
        config.seed, 0xFACE0000ULL + static_cast<unsigned long long>(attempt));
    scenario = Scenario::materialize(cfg);
    g0 = disk.build(scenario.mobility->positions());
    raw_connected = disk.last_augmented_edges() == 0;
  }

  cluster::HierarchyOptions hopts;
  hopts.geometric_links = cfg.geometric_links;
  hopts.beta = cfg.link_beta;
  hopts.tx_radius = cfg.tx_radius();
  hopts.max_levels = cfg.max_levels;
  std::shared_ptr<const cluster::ElectionAlgorithm> algo;
  switch (cfg.cluster_algo) {
    case ClusterAlgo::kAlca: algo = std::make_shared<cluster::Alca>(); break;
    case ClusterAlgo::kMaxMin1: algo = std::make_shared<cluster::MaxMinDCluster>(1); break;
    case ClusterAlgo::kMaxMin2: algo = std::make_shared<cluster::MaxMinDCluster>(2); break;
  }
  cluster::HierarchyBuilder builder(algo, hopts);
  cluster::Hierarchy hier = builder.build(g0, scenario.ids, scenario.mobility->positions());

  // Localized repair replaces the per-tick builder call on changed ticks of
  // the incremental path: consume the unit-disk link delta, re-elect only in
  // the dirty neighborhoods, splice unaffected levels through. Only ALCA has
  // an incremental election; other algorithms keep the builder. When the raw
  // delta cannot describe the effective-graph transition (augmentation
  // bridges, fault stripping, down-mask flips) the repairer edge-diffs level
  // 0 itself instead of falling back to a full re-election.
  const bool repair_enabled = options.incremental_tick && options.localized_repair &&
                              cfg.cluster_algo == ClusterAlgo::kAlca;
  cluster::HierarchyRepairer repairer(hopts);

  lm::HandoffEngine handoff(cfg.handoff);
  handoff.set_metrics(options.metrics);
  handoff.set_trace(options.trace);

  // --- Sharded parallel tick (inert at threads == 1 && shards == 0, the
  // default) --- One per-run pool + a runtime-topology executor: the heavy
  // per-tick phases (unit-disk delta, link diffing, pricing) shard over a
  // grid resolved from RunOptions::shards (0 = auto from the worker count;
  // sim::resolve_shard_count), and per-shard outputs merge in shard index
  // order — so every artifact of the run is bit-identical to the sequential
  // tick regardless of options.threads AND options.shards (see
  // sim/shard.hpp). An explicit shard request with threads == 1 runs the
  // sharded path on a one-worker pool, which the cross-shard-count identity
  // suite uses to pin the {S} x {1} cells.
  std::unique_ptr<common::ThreadPool> tick_pool;
  std::unique_ptr<sim::ShardExecutor> tick_shards;
  if (options.threads != 1 || options.shards != 0) {
    tick_pool = std::make_unique<common::ThreadPool>(options.threads);
    tick_shards = std::make_unique<sim::ShardExecutor>(
        *tick_pool, sim::resolve_shard_count(options.shards, tick_pool->thread_count()));
    disk.set_parallel(tick_shards.get());
    handoff.set_parallel(tick_shards.get());
  }
  cluster::StateChainTracker states;
  cluster::HeadLifetimeTracker tenures;
  common::Xoshiro256 hop_rng(common::derive_seed(cfg.seed, 0xB0F5));

  // GLS rides on a bounding square of the disk region, level-1 cells sized
  // to the radio range (as GLS prescribes).
  std::unique_ptr<lm::GlsHandoffTracker> gls;
  if (options.run_gls) {
    const auto* disk_region = dynamic_cast<const geom::DiskRegion*>(scenario.region.get());
    MANET_CHECK_MSG(disk_region != nullptr, "GLS comparison expects a disk region");
    const double r = disk_region->radius();
    const geom::Vec2 origin = disk_region->center() - geom::Vec2{r, r};
    gls = std::make_unique<lm::GlsHandoffTracker>(
        lm::GridHierarchy::cover(origin, 2.0 * r, cfg.tx_radius()));
  }

  // --- Fault plane (nothing below is constructed on the fault-free path,
  // keeping fault-off runs bit-identical to builds without this block) ---
  const bool faulted = cfg.fault.enabled();
  const Time horizon = cfg.warmup + cfg.duration;
  std::unique_ptr<sim::FaultInjector> injector;
  std::unique_ptr<net::LossyChannel> channel;
  std::unique_ptr<lm::ReliableTransfer> arq;
  std::unique_ptr<common::Xoshiro256> probe_rng;
  std::vector<std::uint8_t> down, prev_down;
  Size crash_events = 0, rejoin_events = 0;
  double probe_sum = 0.0;
  Size probes = 0;
  if (faulted) {
    injector = std::make_unique<sim::FaultInjector>(
        cfg.fault, cfg.n, cfg.warmup, horizon, common::derive_seed(cfg.seed, 0xFA017));
    channel = std::make_unique<net::LossyChannel>(cfg.fault,
                                                  common::derive_seed(cfg.seed, 0xC4A2));
    arq = std::make_unique<lm::ReliableTransfer>(*channel, cfg.fault.retry_budget,
                                                 cfg.fault.arq_timeout,
                                                 cfg.fault.arq_backoff);
    probe_rng = std::make_unique<common::Xoshiro256>(common::derive_seed(cfg.seed, 0x9B0B));
    down.assign(cfg.n, 0);
    prev_down.assign(cfg.n, 0);
    handoff.set_resilience(arq.get(), &down);
  }
  // --- Session/handover plane (experiment E29; constructed only when
  // cfg.sessions, so plain runs stay bit-identical to builds without it) ---
  std::unique_ptr<lm::HandoverManager> handover;
  std::unique_ptr<traffic::SessionWorkload> sessions;
  std::unique_ptr<LmSessionLocator> locator;
  std::unique_ptr<routing::RoutingTables> session_tables;
  if (cfg.sessions) {
    lm::HandoverFsmConfig hocfg = cfg.handover;
    // signal_loss < 0 inherits the fault plane's Bernoulli loss (zero on
    // fault-free runs: procedures then complete within their spawn tick).
    if (hocfg.signal_loss < 0.0) hocfg.signal_loss = faulted ? cfg.fault.loss : 0.0;
    handover = std::make_unique<lm::HandoverManager>(
        hocfg, common::derive_seed(cfg.seed, 0x480F5));
    handover->set_down(faulted ? &down : nullptr);
    handover->set_metrics(options.metrics);
    handover->set_trace(options.trace);
    handoff.set_handover_observer(handover.get());
    sessions = std::make_unique<traffic::SessionWorkload>(
        cfg.session, common::derive_seed(cfg.seed, 0x5E55));
    sessions->set_metrics(options.metrics);
    locator = std::make_unique<LmSessionLocator>(handoff, handover.get(),
                                                 faulted ? &down : nullptr);
  }

  // --- Query-serving plane (experiment E31; constructed only when
  // options.query_load > 0, keeping plain runs bit-identical to builds
  // without it). Each measured tick publishes one epoch and serves
  // query_load lookups whose targets are a pure function of the global
  // lookup index. Partial hit counts and digest contributions are computed
  // per slice of the run's OWN shard topology (one slice on the sequential
  // path) and folded with commutative, associative operations (integer sum,
  // wrapping sum), so the query_* metrics are invariant to how the lookup
  // range is partitioned — never a function of options.threads or
  // options.shards.
  std::unique_ptr<lm::QueryEngine> query_engine;
  std::vector<Size> query_shard_hits;
  std::vector<std::uint64_t> query_shard_digests;
  Size query_lookups = 0, query_hits = 0;
  std::uint64_t query_digest = 0x9E3779B97F4A7C15ULL;
  const Size query_shards = tick_shards != nullptr ? tick_shards->shard_count() : 1;
  if (options.query_load > 0) {
    query_engine = std::make_unique<lm::QueryEngine>(cfg.handoff.select);
    query_shard_hits.assign(query_shards, 0);
    query_shard_digests.assign(query_shards, 0);
  }

  auto refresh_down = [&](Time t) {
    const auto& pos = scenario.mobility->positions();
    for (NodeId v = 0; v < cfg.n; ++v) {
      down[v] = (injector->crashed(v, t) || injector->in_outage(pos[v].x, pos[v].y, t))
                    ? 1
                    : 0;
    }
  };
  // Crashed nodes neither send nor forward: strip their incident edges so
  // the hierarchy re-elects through the survivors (a down clusterhead loses
  // all members and the normal differ machinery records the re-election).
  // The stripped snapshot is cached: when neither the raw topology nor the
  // down-mask changed (\p dirty false), the previous one is returned as is.
  graph::Graph eff;
  std::vector<graph::Edge> strip_scratch;
  bool eff_valid = false;
  auto strip_down = [&](const graph::Graph& gin, bool dirty) -> const graph::Graph* {
    bool any = false;
    for (const auto f : down) any = any || f != 0;
    if (!any) return &gin;
    if (dirty || !eff_valid) {
      strip_scratch.clear();
      for (const auto& e : gin.edges()) {
        if (down[e.first] == 0 && down[e.second] == 0) strip_scratch.push_back(e);
      }
      eff.assign(gin.vertex_count(), strip_scratch);
      eff_valid = true;
    }
    return &eff;
  };

  // --- Warmup: advance mobility without accounting ---
  // The step count is derived once as an integer: accumulating t += cfg.tick
  // in floating point drifts for ticks without an exact binary representation
  // (0.1 summed ten times is not 1.0) and eventually skips or repeats a
  // warmup step on long horizons.
  sim::Engine engine;
  const auto warmup_ticks = static_cast<Size>(std::floor(cfg.warmup / cfg.tick + 1e-9));
  for (Size i = 1; i <= warmup_ticks; ++i) {
    scenario.mobility->advance_to(static_cast<Time>(i) * cfg.tick);
  }
  const bool inc = options.incremental_tick;
  const graph::Graph* g;  // effective (post-strip) level-0 graph this tick
  if (inc) {
    g = &disk.update(scenario.mobility->positions());
  } else {
    g0 = disk.build(scenario.mobility->positions());
    g = &g0;
  }
  const Time t0 = cfg.warmup;
  if (faulted) {
    refresh_down(t0);
    g = strip_down(*g, /*dirty=*/true);
  }
  hier = builder.build(*g, scenario.ids, scenario.mobility->positions());
  handoff.prime(hier, t0);
  // Landmark-guided pricing (exact on any pricing graph, so enabling it
  // never changes a priced value; the full-rebuild arm keeps the historical
  // per-pair BFS engine as the bit-identity reference — see
  // net::HopOracle).
  if (inc) handoff.set_fast_pricing(true);
  // Bridges standing on the *previous* tick spoil the raw link delta: the
  // hierarchy was built over the augmented graph then, so the delta
  // (bridges excluded) would not describe the transition out of it.
  bool prev_bridged = disk.last_augmented_edges() > 0;
  if (faulted) {
    prev_down = down;
    for (NodeId v = 0; v < cfg.n; ++v) {
      if (down[v] != 0) handoff.on_node_down(v, t0);
    }
  }
  net::LinkTracker links(*g, t0);
  links.set_metrics(options.metrics);
  if (tick_shards) links.set_parallel(tick_shards.get());
  if (gls) gls->prime(scenario.mobility->positions(), scenario.ids, t0);

  std::unique_ptr<lm::RegistrationTracker> registration;
  if (options.track_registration) {
    lm::RegistrationConfig reg_cfg;
    reg_cfg.select = cfg.handoff.select;
    reg_cfg.threshold = options.registration_threshold;
    reg_cfg.tx_radius = cfg.tx_radius();
    registration = std::make_unique<lm::RegistrationTracker>(reg_cfg);
    registration->prime(hier, scenario.mobility->positions(), t0);
    if (faulted) registration->set_resilience(arq.get(), &down);
  }

  // --- Measured window, driven by a recurring tick event ---
  // Accumulators for level-k link dynamics and event taxonomy.
  std::vector<double> ek_time_sum;      // sum over ticks of |E_k|
  std::vector<Size> ek_ticks;           // ticks where level k existed
  std::vector<Size> level_link_events;  // level-k link up+down counts
  std::vector<double> nk_time_sum;      // sum over ticks of |V_k|
  std::vector<double> levels_sum;       // clustered level count per tick
  std::array<std::vector<Size>, cluster::kReorgEventTypeCount> event_counts;
  Size ticks = 0;
  Size augmented_edges = 0;

  auto accumulate_shape = [&](const cluster::Hierarchy& h) {
    levels_sum.push_back(static_cast<double>(h.top_level()));
    for (Level k = 1; k <= h.top_level(); ++k) {
      if (ek_time_sum.size() <= k) {
        ek_time_sum.resize(k + 1, 0.0);
        ek_ticks.resize(k + 1, 0);
        nk_time_sum.resize(k + 1, 0.0);
      }
      ek_time_sum[k] += static_cast<double>(h.level(k).topo.edge_count());
      nk_time_sum[k] += static_cast<double>(h.level(k).vertex_count());
      ++ek_ticks[k];
    }
  };
  accumulate_shape(hier);
  if (options.track_states) {
    states.observe(hier, cfg.tick);
    tenures.observe(hier, t0);
  }

  const Size audit_every =
      faulted ? std::max<Size>(1, static_cast<Size>(std::lround(cfg.fault.audit_period /
                                                                cfg.tick)))
              : 0;
  engine.set_trace_sink(options.trace);
  engine.run_until(t0);
  // Reused across ticks: the freshly built hierarchy and the diff scratch
  // (their internal buffers survive moves/clears, so changed steady-state
  // ticks stop growing the heap).
  cluster::Hierarchy next;
  cluster::HierarchyDelta delta;
  net::LinkDelta link_delta;
  auto tick_fn = [&] {
    const Time now = engine.now();
    scenario.mobility->advance_to(now);

    bool topo_changed = true;  // full-rebuild path treats every tick as changed
    bool pos_moved = true;
    if (inc) {
      g = &disk.update(scenario.mobility->positions());
      topo_changed = disk.changed();
      pos_moved = disk.last_moved_nodes() > 0;
    } else {
      g0 = disk.build(scenario.mobility->positions());
      g = &g0;
    }
    augmented_edges += disk.last_augmented_edges();
    const bool bridged = disk.last_augmented_edges() > 0;

    bool mask_changed = false;
    if (faulted) {
      std::swap(prev_down, down);
      refresh_down(now);
      mask_changed = down != prev_down;
      g = strip_down(*g, topo_changed || mask_changed);
    }

    // Change gate (incremental path): the hierarchy rebuild and snapshot
    // diff are skipped when nothing they read changed this tick — no level-0
    // edge delta (augmentation included), same down-mask, and either no node
    // moved or level-k links are purely topological (geometric links, paper
    // eq. (7), re-derive from positions on every build). Two identical
    // snapshots diff to an empty delta, so skipping build+diff outright is
    // bit-identical to the full-rebuild path.
    const bool rebuild =
        !inc || topo_changed || mask_changed || (pos_moved && cfg.geometric_links);
    if (rebuild) {
      // Localized repair needs an exact level-0 delta from hier's topology to
      // *g. The raw unit-disk delta provides it as long as the graph the
      // hierarchy sees IS the raw graph on both ends of the transition: no
      // augmentation bridge now or when hier was built, no down nodes, and a
      // stable down-mask. Whenever any of those fail, the repairer edge-diffs
      // level 0 against hier itself (the same O(|E|) set differences it runs
      // for every higher level) — still churn-proportional above level 0.
      if (repair_enabled) {
        bool any_down = false;
        if (faulted) {
          for (const auto f : down) any_down = any_down || f != 0;
        }
        const bool delta_exact = !mask_changed && !bridged && !prev_bridged && !any_down;
        repairer.repair(*g, disk.links_up(), disk.links_down(), scenario.ids,
                        scenario.mobility->positions(), hier, next, delta_exact);
      } else {
        next = builder.build(*g, scenario.ids, scenario.mobility->positions(),
                             inc ? &hier : nullptr);
      }
    }
    prev_bridged = bridged;
    const cluster::Hierarchy& hnow = rebuild ? next : hier;

    // Gated tick: !rebuild proves the level-0 edge set and the hierarchy are
    // both unchanged (see the change-gate derivation above), so the link diff
    // and the handoff snapshot would compare equal everywhere — skip their
    // recomputation outright. Bit-identical by the same argument as the
    // build+diff skip.
    if (rebuild) {
      links.update_into(*g, now, link_delta);
      handoff.update(hnow, *g, now);
    } else {
      links.advance_unchanged(now);
      handoff.advance_unchanged(now);
    }
    if (faulted) {
      for (NodeId v = 0; v < cfg.n; ++v) {
        if (down[v] != 0 && prev_down[v] == 0) {
          ++crash_events;
          handoff.on_node_down(v, now);
        } else if (down[v] == 0 && prev_down[v] != 0) {
          ++rejoin_events;
          handoff.on_node_up(*g, v, now);
        }
      }
      if ((ticks + 1) % audit_every == 0) {
        handoff.audit_repair(*g, now);
        probe_sum += handoff.query_probe(*probe_rng, cfg.fault.probe_pairs);
        ++probes;
      }
    }
    if (gls) gls->update(scenario.mobility->positions(), *g, scenario.ids, now);
    if (registration) registration->update(hnow, *g, scenario.mobility->positions(), now);

    if (options.track_events && rebuild) {
      cluster::diff_hierarchies(hier, next, delta);
      if (engine.tracing()) {
        for (const auto& m : delta.migrations) {
          engine.emit(sim::TraceEventType::kMigration, m.level, m.node, m.to_head);
        }
        for (const auto& ev : delta.events) {
          engine.emit(trace_type_of(ev.type), ev.level, ev.a, ev.b);
        }
      }
      for (std::size_t type = 0; type < cluster::kReorgEventTypeCount; ++type) {
        auto& acc = event_counts[type];
        const auto& per_level = delta.event_counts[type];
        if (acc.size() < per_level.size()) acc.resize(per_level.size(), 0);
        for (Level k = 0; k < per_level.size(); ++k) acc[k] += per_level[k];
      }
      for (Level k = 1; k < delta.links_up.size(); ++k) {
        if (level_link_events.size() <= k) level_link_events.resize(k + 1, 0);
        level_link_events[k] += delta.links_up[k].size();
      }
      for (Level k = 1; k < delta.links_down.size(); ++k) {
        if (level_link_events.size() <= k) level_link_events.resize(k + 1, 0);
        level_link_events[k] += delta.links_down[k].size();
      }
    } else if (options.track_events) {
      // Gated tick: the full-rebuild path would diff two identical snapshots
      // here, adding nothing but growing the per-level link accumulator to
      // the level count. Reproduce that sizing so the zero-valued g_k /
      // gprime_k entries are emitted identically.
      const Size levels_now = hier.level_count();
      if (levels_now >= 2 && level_link_events.size() < levels_now) {
        level_link_events.resize(levels_now, 0);
      }
    }

    if (rebuild) hier = std::move(next);

    // Session/handover plane: the FSMs advance every tick (pending deadlines
    // fire on gated ticks too), then each live session's packets resolve
    // through the locator and route over tables rebuilt only on changed
    // ticks (a gated tick proves the level-0 graph and hierarchy are both
    // unchanged, so the cached tables stay exact).
    if (cfg.sessions) {
      handover->tick(now);
      if (rebuild || session_tables == nullptr) {
        session_tables = std::make_unique<routing::RoutingTables>(*g, hier);
      }
      traffic::SessionWorkload::TickContext sctx;
      sctx.tables = session_tables.get();
      sctx.locator = locator.get();
      sctx.down = faulted ? &down : nullptr;
      sctx.node_count = cfg.n;
      sctx.now = now;
      sctx.dt = cfg.tick;
      sessions->tick_sessions(sctx);
    }
    // Query-serving plane: the tick's write phase is done — publish the new
    // epoch and serve this tick's lookup load against it (sharded over the
    // tick executor when one exists; the sequential path serves the whole
    // range as one slice — the commutative fold makes both identical).
    if (query_engine) {
      query_engine->publish(hier, handoff.database(), now);
      const std::uint64_t tick_base =
          static_cast<std::uint64_t>(ticks) * static_cast<std::uint64_t>(options.query_load);
      auto serve_shard = [&](Size shard) {
        const auto [begin, end] =
            sim::ShardExecutor::slice(options.query_load, shard, query_shards);
        Size hits = 0;
        std::uint64_t digest = 0;
        for (Size q = begin; q < end; ++q) {
          // Weyl-style target mixing: owners sweep the id space evenly, the
          // level cycles over [2, 4] (levels above the current top answer
          // found = false, deterministically).
          const std::uint64_t gq = tick_base + q;
          const auto owner = static_cast<NodeId>((gq * 2654435761ULL) % cfg.n);
          const Level k = lm::kFirstServedLevel + static_cast<Level>(gq % 3);
          const lm::QueryResult r = query_engine->lookup(owner, k);
          hits += r.found ? 1 : 0;
          // Per-lookup contribution folded with a wrapping sum. Unlike the
          // old chained-FNV-per-slice scheme, a sum of per-lookup mixes is
          // commutative and associative, so the digest is invariant to how
          // [0, query_load) is partitioned: any shard count, any thread
          // count and the sequential path all fold to the same word.
          const std::uint64_t answer = (static_cast<std::uint64_t>(r.server) << 32) ^
                                       r.version ^ (r.found ? 1ULL : 0ULL);
          digest += common::mix64(gq ^ common::mix64(answer));
        }
        query_shard_hits[shard] = hits;
        query_shard_digests[shard] = digest;
      };
      if (tick_shards) {
        tick_shards->for_each_shard(serve_shard);
      } else {
        serve_shard(0);  // query_shards == 1: the whole range, one slice
      }
      Size tick_hits = 0;
      for (Size shard = 0; shard < query_shards; ++shard) {
        tick_hits += query_shard_hits[shard];
        query_digest += query_shard_digests[shard];
      }
      query_hits += tick_hits;
      query_lookups += options.query_load;
      if (options.metrics != nullptr) {
        options.metrics->counter("lm.query_lookups").add(options.query_load);
        options.metrics->counter("lm.query_hits").add(tick_hits);
        options.metrics->gauge("lm.query_epoch")
            .set(static_cast<double>(query_engine->epoch()));
      }
    }
    accumulate_shape(hier);
    if (options.track_states) {
      states.observe(hier, cfg.tick);
      tenures.observe(hier, now);
      if (options.metrics != nullptr) states.publish(*options.metrics);
    }
    ++ticks;
    if (options.metrics != nullptr) {
      options.metrics->counter("sim.ticks").add(1);
      options.metrics->gauge("sim.now").set(now);
    }
  };
  // The i-th measured tick fires at t0 + i * tick (one multiply per tick —
  // no accumulated rounding), and exactly total_ticks of them are scheduled,
  // so the measured sample count is a pure function of (duration, tick) on
  // any horizon. The horizon is widened by an ulp-sized max() because the
  // last product can round a hair past warmup + duration.
  const auto total_ticks = static_cast<Size>(std::floor(cfg.duration / cfg.tick + 1e-9));
  for (Size i = 1; i <= total_ticks; ++i) {
    engine.schedule_at(t0 + static_cast<Time>(i) * cfg.tick, tick_fn);
  }
  const auto alloc_at_measure = common::alloc_profile::totals();
  engine.run_until(std::max(horizon, t0 + static_cast<Time>(total_ticks) * cfg.tick));

  // Per-phase allocator traffic. Guarded on enabled() so that default builds
  // publish nothing and every artifact stays byte-identical to an
  // uninstrumented binary.
  if (common::alloc_profile::enabled() && options.metrics != nullptr) {
    const auto setup = common::alloc_profile::delta(alloc_at_measure, alloc_at_start);
    const auto measured =
        common::alloc_profile::delta(common::alloc_profile::totals(), alloc_at_measure);
    options.metrics->counter("alloc.setup.count").add(setup.allocations);
    options.metrics->counter("alloc.setup.bytes").add(setup.bytes);
    options.metrics->counter("alloc.ticks.count").add(measured.allocations);
    options.metrics->counter("alloc.ticks.bytes").add(measured.bytes);
    if (total_ticks > 0) {
      options.metrics->gauge("alloc.per_tick")
          .set(static_cast<double>(measured.allocations) /
               static_cast<double>(total_ticks));
    }
  }

  // Sharded-tick telemetry: fold the per-shard par.* counters into the run
  // registry. The values are pure functions of the workload and the fixed
  // shard grid — identical at every thread count >= 2 (the sequential path
  // has no executor and publishes none, like alloc.* in default builds).
  if (tick_shards != nullptr && options.metrics != nullptr) {
    tick_shards->merge_metrics_into(*options.metrics);
  }

  // --- Flatten metrics ---
  RunMetrics out;
  const double n = static_cast<double>(cfg.n);
  const double window = handoff.elapsed();
  out.set("connected0", raw_connected ? 1.0 : 0.0);
  out.set("augmented_per_tick",
          ticks > 0 ? static_cast<double>(augmented_edges) / static_cast<double>(ticks) : 0.0);
  out.set("ticks", static_cast<double>(ticks));
  out.set("window", window);
  out.set("tx_radius", cfg.tx_radius());

  out.set("phi_rate", handoff.phi_rate());
  out.set("gamma_rate", handoff.gamma_rate());
  out.set("total_rate", handoff.phi_rate() + handoff.gamma_rate());
  out.set("unreachable", static_cast<double>(handoff.unreachable_transfers()));
  out.set("level_churn", static_cast<double>(handoff.level_churn_entries()));
  out.set("f0", links.events_per_node_per_second());

  const Level max_level = static_cast<Level>(
      std::max<std::size_t>(handoff.per_level().size(), ek_time_sum.size()));
  for (Level k = 1; k < max_level; ++k) {
    if (k < handoff.per_level().size()) {
      out.set(keyed("phi_k", k), handoff.phi_rate_at(k));
      out.set(keyed("gamma_k", k), handoff.gamma_rate_at(k));
      out.set(keyed("f_k", k), handoff.migration_rate(k));
    }
    if (k < ek_time_sum.size() && ek_ticks[k] > 0) {
      const double mean_ek = ek_time_sum[k] / static_cast<double>(ek_ticks[k]);
      const double mean_nk = nk_time_sum[k] / static_cast<double>(ek_ticks[k]);
      out.set(keyed("ek_per_v", k), mean_ek / n);
      out.set(keyed("clusters", k), mean_nk);
      if (k >= 1) {
        const double mean_prev = k == 1 ? n : nk_time_sum[k - 1] /
                                                  static_cast<double>(ek_ticks[k - 1]);
        if (mean_nk > 0.0) out.set(keyed("alpha", k), mean_prev / mean_nk);
      }
      if (k < level_link_events.size() && window > 0.0) {
        const double events = static_cast<double>(level_link_events[k]);
        out.set(keyed("g_k", k), events / (n * window));
        if (mean_ek > 0.0) out.set(keyed("gprime_k", k), events / (mean_ek * window));
      }
    }
  }

  if (!levels_sum.empty()) {
    double sum = 0.0;
    for (const double l : levels_sum) sum += l;
    out.set("levels", sum / static_cast<double>(levels_sum.size()));
  }

  if (options.track_events && window > 0.0) {
    static const char* kEventKeys[cluster::kReorgEventTypeCount] = {
        "ev.i", "ev.ii", "ev.iii", "ev.iv", "ev.v", "ev.vi", "ev.vii"};
    for (std::size_t type = 0; type < cluster::kReorgEventTypeCount; ++type) {
      for (Level k = 0; k < event_counts[type].size(); ++k) {
        if (event_counts[type][k] == 0) continue;
        out.set(keyed(kEventKeys[type], k),
                static_cast<double>(event_counts[type][k]) / (n * window));
      }
    }
  }

  if (options.track_states) {
    for (Level k = 1; k <= tenures.level_count(); ++k) {
      const auto tenure = tenures.stats(k);
      if (tenure.completed > 0) {
        out.set(keyed("tenure_k", k), tenure.mean_lifetime);
      } else if (tenure.ongoing > 0) {
        // No completed tenure in the window: report the censored age as a
        // lower bound (deep heads often outlive the whole run).
        out.set(keyed("tenure_min_k", k), tenure.mean_ongoing_age);
      }
    }
    const auto p = states.p_profile();
    for (Level k = 0; k < p.size(); ++k) out.set(keyed("p_state1", k), p[k]);
    // Recursion profile for the deepest level with at least 2 chain links:
    // p_desc = {p_{k-1}, ..., p_1} with k = top level.
    if (p.size() >= 2) {
      std::vector<double> p_desc(p.rbegin(), p.rend() - 1);  // p[k-1] .. p[1]
      const auto profile = cluster::recursion_profile(p_desc);
      out.set("q1", profile.q.empty() ? 0.0 : profile.q[0]);
      out.set("q1_over_Q", profile.q1_over_Q);
      out.set("q_lower_bound", profile.lower_bound);
    }
  }

  if (options.measure_hops) {
    graph::BfsScratch bfs;
    for (Level k = 1; k <= hier.top_level(); ++k) {
      out.set(keyed("h_k", k),
              measure_hk(hier, *g, k, options.hop_sample_pairs, hop_rng, bfs));
    }
  }

  // LM database census on the final state.
  const auto loads = handoff.database().load_vector();
  const auto ls = lm::load_stats(loads);
  out.set("entries_per_node",
          static_cast<double>(handoff.database().total_entries()) / n);
  out.set("load_mean", ls.mean);
  out.set("load_max", ls.max);
  out.set("load_gini", ls.gini);

  double map_sum = 0.0;
  for (NodeId v = 0; v < cfg.n; ++v) {
    map_sum += static_cast<double>(lm::hierarchical_map_size(hier, v));
  }
  out.set("map_size", map_sum / n);

  if (gls) {
    out.set("gls_handoff_rate", gls->handoff_rate());
    out.set("gls_update_rate", gls->update_rate());
    out.set("gls_total_rate", gls->combined_rate());
  }

  if (registration) {
    out.set("reg_rate", registration->rate());
    out.set("reg_updates", static_cast<double>(registration->total_updates()));
    for (Level k = lm::kFirstServedLevel; k < registration->levels_tracked(); ++k) {
      const double r = registration->rate_at(k);
      if (r > 0.0) out.set(keyed("reg_k", k), r);
    }
  }

  if (faulted) {
    // Final repair pass + consistency probe: the acceptance bar is that the
    // repair path restores query success after sustained loss.
    handoff.audit_repair(*g, horizon);
    const double query_final = handoff.query_probe(*probe_rng, cfg.fault.probe_pairs);
    const auto& resil = handoff.resilience();
    out.set("crashes", static_cast<double>(crash_events));
    out.set("rejoins", static_cast<double>(rejoin_events));
    out.set("scheduled_crashes", static_cast<double>(injector->scheduled_crashes()));
    out.set("packets_lossy", static_cast<double>(channel->packets_sent()));
    out.set("packets_dropped", static_cast<double>(channel->packets_dropped()));
    out.set("phi_retx", static_cast<double>(resil.phi_retx));
    out.set("gamma_retx", static_cast<double>(resil.gamma_retx));
    out.set("phi_retx_rate", handoff.phi_retx_rate());
    out.set("gamma_retx_rate", handoff.gamma_retx_rate());
    out.set("failed_transfers", static_cast<double>(resil.failed_transfers));
    out.set("entries_dropped", static_cast<double>(resil.entries_dropped));
    out.set("stale_entries", static_cast<double>(handoff.stale_entries()));
    out.set("repairs", static_cast<double>(resil.repairs));
    out.set("repair_packets", static_cast<double>(resil.repair_packets));
    out.set("mean_time_to_repair", handoff.mean_time_to_repair());
    out.set("query_success_rate", query_final);
    out.set("query_success_mean",
            probes > 0 ? probe_sum / static_cast<double>(probes) : query_final);
    if (registration) {
      out.set("reg_retx", static_cast<double>(registration->total_retx()));
      out.set("reg_retx_rate", registration->retx_rate());
      out.set("reg_failed", static_cast<double>(registration->failed_updates()));
    }
  }

  if (cfg.sessions) {
    sessions->finish(horizon);  // close windows still open at run end
    const auto& ss = sessions->stats();
    out.set("sessions", static_cast<double>(ss.sessions));
    out.set("session_rate", ss.rate(cfg.n));
    out.set("session_undeliverable", static_cast<double>(ss.undeliverable));
    out.set("session_recovered", static_cast<double>(ss.recovered));
    out.set("session_skipped_ticks", static_cast<double>(ss.skipped_ticks));
    out.set("session_packets", static_cast<double>(ss.packets_offered));
    out.set("session_delivered", static_cast<double>(ss.packets_delivered));
    out.set("session_misrouted", static_cast<double>(ss.packets_misrouted));
    out.set("session_misroute_rate", ss.misroute_rate());
    out.set("session_misroute_extra", static_cast<double>(ss.misroute_extra));
    out.set("session_lost", static_cast<double>(ss.packets_lost));
    out.set("session_loss_rate", ss.loss_rate());
    out.set("session_interruptions", static_cast<double>(ss.interruptions));
    out.set("session_interruption_time", ss.interruption_time);
    out.set("session_interruption_p99", sessions->interruption_quantile(0.99));
    const auto& hs = handover->stats();
    out.set("handover_started", static_cast<double>(hs.started));
    out.set("handover_completed", static_cast<double>(hs.completed));
    out.set("handover_retries", static_cast<double>(hs.retries));
    out.set("handover_timeouts", static_cast<double>(hs.timeouts));
    out.set("handover_rollbacks", static_cast<double>(hs.rollbacks));
    out.set("handover_rollback_failures", static_cast<double>(hs.rollback_failures));
    out.set("handover_target_crashes", static_cast<double>(hs.target_crashes));
    out.set("handover_superseded", static_cast<double>(hs.superseded));
    out.set("handover_repaired", static_cast<double>(hs.repaired));
    out.set("handover_retired", static_cast<double>(hs.retired));
    out.set("handover_signal_packets", static_cast<double>(hs.signal_packets));
    out.set("handover_mean_completion", hs.mean_completion_time());
    out.set("handover_in_flight", static_cast<double>(handover->in_flight()));
  }

  if (query_engine) {
    out.set("query_lookups", static_cast<double>(query_lookups));
    out.set("query_hits", static_cast<double>(query_hits));
    out.set("query_hit_rate", query_lookups > 0
                                  ? static_cast<double>(query_hits) /
                                        static_cast<double>(query_lookups)
                                  : 0.0);
    out.set("query_epochs", static_cast<double>(query_engine->epoch()));
    // Folded to 32 bits so the double holds it exactly (identity witness for
    // the thread-count bit-identity suite).
    out.set("query_digest", static_cast<double>(query_digest & 0xFFFFFFFFULL));
  }

  if (options.measure_routing) {
    const routing::RoutingTables tables(*g, hier);
    out.set("rt_table_size", tables.mean_table_size());
    const auto stretch =
        routing::measure_stretch(tables, *g, options.stretch_pairs,
                                 common::derive_seed(cfg.seed, 0x57E7));
    out.set("rt_stretch", stretch.mean_stretch);
    out.set("rt_stretch_max", stretch.max_stretch);
    out.set("rt_failures", static_cast<double>(stretch.failures));
    out.set("rt_recoveries", static_cast<double>(stretch.recoveries));
    out.set("rt_hier_hops", stretch.mean_hier_hops);
    out.set("rt_shortest_hops", stretch.mean_shortest_hops);
  }

  return out;
}

}  // namespace manet::exp
