#pragma once

#include <vector>

#include "cluster/hierarchy.hpp"
#include "common/metrics.hpp"

/// \file state_chain.hpp
/// ALCA cluster-state occupancy tracking (paper Fig. 3 and Section 5.3.2).
///
/// The ALCA state of a level-k vertex is the number of level-k neighbors
/// that elected it (states 1..n are clusterhead states; 0 is ordinary).
/// From time-weighted occupancy we estimate:
///   p_j  — probability a level-j vertex sits in state 1 ("critical node"),
///   q_j  — probability the recursive rejection chain of eq. (15a) stops
///          after exactly j levels,
///   q1/Q — the fraction bounding T_R in eq. (17)/(21b),
/// and test eq. (22): q1 stays bounded away from 0 as |V| grows — the
/// paper's explicitly named future-work measurement (experiment E11).

namespace manet::cluster {

/// Occupancy histogram for one hierarchy level.
struct StateOccupancy {
  /// time_in_state[s] = total node-seconds spent in ALCA state s
  /// (s capped at the histogram size - 1).
  std::vector<double> time_in_state;
  double total_node_time = 0.0;

  /// Fraction of node-time in state \p s.
  double fraction(Size s) const;
  /// p estimate: fraction of node-time in state exactly 1.
  double p_state1() const { return fraction(1); }
};

class StateChainTracker {
 public:
  /// \p max_state caps the histogram (states beyond it are lumped together).
  explicit StateChainTracker(Size max_state = 16);

  /// Accumulate the states of \p h for a dwell time of \p dt seconds.
  /// Level occupancies are tracked for every level that ran an election.
  void observe(const Hierarchy& h, double dt);

  /// Number of levels with any observations.
  Size level_count() const { return occupancy_.size(); }

  const StateOccupancy& occupancy(Level k) const;

  /// p_j estimates for j = 1..level_count(): p[j-1] = p_state1 of level j.
  /// (Level indices follow the paper: p_j applies to level-j vertices; the
  /// election that defines their state runs on level j.)
  std::vector<double> p_profile() const;

  /// Publish the current occupancy estimates as alca.p_state1.k gauges (one
  /// per observed level) plus alca.levels_observed, so the critical-state
  /// profile is queryable live alongside the lm.* instruments.
  void publish(common::MetricsRegistry& registry) const;

 private:
  Size max_state_;
  std::vector<StateOccupancy> occupancy_;  // index: level that ran the election
};

/// Recursive-rejection profile of eq. (15): given per-level critical-state
/// probabilities p (p[i] = p_{level i+? } — pass the probabilities for
/// levels k-1, k-2, ..., 1 in that order), compute q_j, Q = sum q_j, and the
/// lower-bound ratio q1 / (p^2 + q1) of eq. (21b).
struct RecursionProfile {
  std::vector<double> q;   ///< q_1 .. q_{k-1}
  double Q = 0.0;          ///< eq. (15b)
  double q1_over_Q = 0.0;  ///< exact ratio (when Q > 0)
  double lower_bound = 0.0;///< eq. (21b): q1 / (p^2 + q1), p = max of the p's
};

/// \p p_desc lists p_{k-1}, p_{k-2}, ..., p_1 (descending level order), so
/// q.size() == p_desc.size().
RecursionProfile recursion_profile(std::span<const double> p_desc);

}  // namespace manet::cluster
