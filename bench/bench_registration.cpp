/// E18: location *registration* overhead — the owner-driven server updates.
/// The paper's conclusions cite the companion work [17] for the claim that
/// registration costs only Theta(log|V|) packet transmissions per node per
/// second (one notch below handoff's log^2). Distance-threshold updates per
/// level make update frequency fall as 1/sqrt(c_k) while path length grows
/// as sqrt(c_k) — the same cancellation as eq. (9).

#include "bench_util.hpp"

using namespace manet;

int main() {
  bench::print_header(
      "E18  bench_registration — owner-driven location updates",
      "registration = Theta(log|V|) pkts/node/s (companion claim, paper Sec. 6)");

  auto cfg = bench::paper_scenario();
  exp::RunOptions opts;
  opts.track_events = false;
  opts.track_states = false;
  opts.measure_hops = false;
  opts.track_registration = true;

  exp::Campaign campaign;
  analysis::TextTable table({"|V|", "registration", "reg/log(n)", "handoff phi+gamma",
                             "control total"});
  for (const Size n : bench::standard_nodes()) {
    cfg.n = n;
    exp::SweepPoint point;
    point.n = n;
    point.metrics = exp::run_replications(cfg, bench::standard_replications(), opts);
    const double reg = point.metrics.mean("reg_rate");
    const double handoff = point.metrics.mean("total_rate");
    table.add_row({std::to_string(n), bench::cell(point.metrics, "reg_rate"),
                   bench::fixed(reg / std::log(static_cast<double>(n)), 4),
                   bench::cell(point.metrics, "total_rate"),
                   bench::fixed(reg + handoff, 5)});
    campaign.points.push_back(std::move(point));
  }
  std::printf("%s", table.to_string("registration vs handoff (pkts/node/s)").c_str());

  for (const auto& point : campaign.points) {
    analysis::TextTable levels({"level", "reg_k"});
    for (Level k = 2; k <= 12; ++k) {
      char key[32];
      std::snprintf(key, sizeof(key), "reg_k.%u", k);
      if (!point.metrics.has(key)) break;
      levels.add_row({std::to_string(k), bench::fixed(point.metrics.mean(key))});
    }
    char title[64];
    std::snprintf(title, sizeof(title), "per-level registration at |V| = %zu", point.n);
    std::printf("%s", levels.to_string(title).c_str());
  }

  bench::print_model_selection("registration", campaign, "reg_rate");
  std::printf(
      "\nreading: per-level registration cost is roughly level-invariant\n"
      "(the 1/sqrt(c_k) frequency cancels the sqrt(c_k) path), so the total\n"
      "tracks the level count = Theta(log n) — one log below handoff.\n");
  return 0;
}
