#include "lm/database.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace manet::lm {
namespace {

TEST(LmDatabase, StartsEmpty) {
  const LmDatabase db(5);
  EXPECT_EQ(db.total_entries(), 0u);
  EXPECT_EQ(db.node_count(), 5u);
  EXPECT_EQ(db.entry_count(2), 0u);
}

TEST(LmDatabase, PutAndFind) {
  LmDatabase db(4);
  db.put(1, LocationRecord{7, 2, 3.5, 0});
  const auto* rec = db.find(1, 7, 2);
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->owner, 7u);
  EXPECT_EQ(rec->level, 2u);
  EXPECT_DOUBLE_EQ(rec->updated, 3.5);
  EXPECT_EQ(db.total_entries(), 1u);
}

TEST(LmDatabase, FindAbsentReturnsNull) {
  LmDatabase db(4);
  EXPECT_EQ(db.find(0, 1, 2), nullptr);
  db.put(0, LocationRecord{1, 2, 0.0, 0});
  EXPECT_EQ(db.find(0, 1, 3), nullptr);  // different level
  EXPECT_EQ(db.find(1, 1, 2), nullptr);  // different server
}

TEST(LmDatabase, PutOverwritesSameKey) {
  LmDatabase db(4);
  db.put(0, LocationRecord{1, 2, 1.0, 0});
  db.put(0, LocationRecord{1, 2, 9.0, 5});
  EXPECT_EQ(db.total_entries(), 1u);
  EXPECT_DOUBLE_EQ(db.find(0, 1, 2)->updated, 9.0);
  EXPECT_EQ(db.find(0, 1, 2)->version, 5u);
}

TEST(LmDatabase, SameOwnerDifferentLevelsAreDistinct) {
  LmDatabase db(4);
  db.put(0, LocationRecord{1, 2, 0.0, 0});
  db.put(0, LocationRecord{1, 3, 0.0, 0});
  EXPECT_EQ(db.total_entries(), 2u);
  EXPECT_EQ(db.entry_count(0), 2u);
}

TEST(LmDatabase, TakeRemovesAndReturns) {
  LmDatabase db(4);
  db.put(2, LocationRecord{5, 2, 1.0, 3});
  const auto rec = db.take(2, 5, 2);
  EXPECT_EQ(rec.owner, 5u);
  EXPECT_EQ(rec.version, 3u);
  EXPECT_EQ(db.total_entries(), 0u);
  EXPECT_EQ(db.find(2, 5, 2), nullptr);
}

TEST(LmDatabase, TakeAbsentReturnsInvalid) {
  LmDatabase db(4);
  const auto rec = db.take(0, 9, 2);
  EXPECT_EQ(rec.owner, kInvalidNode);
  EXPECT_EQ(db.total_entries(), 0u);
}

TEST(LmDatabase, LoadVectorMatchesEntryCounts) {
  LmDatabase db(3);
  db.put(0, LocationRecord{1, 2, 0.0, 0});
  db.put(0, LocationRecord{2, 2, 0.0, 0});
  db.put(2, LocationRecord{1, 3, 0.0, 0});
  EXPECT_EQ(db.load_vector(), (std::vector<Size>{2, 0, 1}));
}

TEST(LmDatabase, ResetClears) {
  LmDatabase db(3);
  db.put(0, LocationRecord{1, 2, 0.0, 0});
  db.reset(5);
  EXPECT_EQ(db.total_entries(), 0u);
  EXPECT_EQ(db.node_count(), 5u);
}

/// The store key packs level into the low 16 bits of (owner << 16) | level:
/// adjacent-but-distinct (owner, level) pairs must never collide, and a
/// level outside the packed range must be rejected rather than aliased onto
/// another owner's entry.
TEST(LmDatabase, PackedKeyBoundaries) {
  LmDatabase db(2);
  // (owner=1, level=0xFFFF) and (owner=2, level=0) pack to adjacent keys
  // 0x1FFFF and 0x20000 — both must round-trip independently.
  db.put(0, LocationRecord{1, 0xFFFF, 1.0, 10});
  db.put(0, LocationRecord{2, 0, 2.0, 20});
  ASSERT_NE(db.find(0, 1, 0xFFFF), nullptr);
  ASSERT_NE(db.find(0, 2, 0), nullptr);
  EXPECT_EQ(db.find(0, 1, 0xFFFF)->version, 10u);
  EXPECT_EQ(db.find(0, 2, 0)->version, 20u);
  EXPECT_EQ(db.total_entries(), 2u);
}

TEST(LmDatabaseDeathTest, LevelBeyondPackedRangeIsRejected) {
  LmDatabase db(2);
  EXPECT_DEATH(db.put(0, LocationRecord{1, 0x10000, 0.0, 0}), "packed-key range");
  EXPECT_DEATH(db.find(0, 1, 0x10000), "packed-key range");
}

TEST(LoadStats, UniformLoadHasZeroGini) {
  const auto stats = load_stats({4, 4, 4, 4});
  EXPECT_DOUBLE_EQ(stats.mean, 4.0);
  EXPECT_DOUBLE_EQ(stats.max, 4.0);
  EXPECT_NEAR(stats.gini, 0.0, 1e-12);
  EXPECT_NEAR(stats.variance, 0.0, 1e-12);
}

TEST(LoadStats, ConcentratedLoadHasHighGini) {
  const auto stats = load_stats({0, 0, 0, 12});
  EXPECT_DOUBLE_EQ(stats.mean, 3.0);
  EXPECT_DOUBLE_EQ(stats.max, 12.0);
  EXPECT_NEAR(stats.gini, 0.75, 1e-12);  // (n-1)/n for a point mass
}

TEST(LoadStats, EmptyAndZeroVectors) {
  EXPECT_DOUBLE_EQ(load_stats({}).mean, 0.0);
  const auto stats = load_stats({0, 0, 0});
  EXPECT_DOUBLE_EQ(stats.mean, 0.0);
  EXPECT_DOUBLE_EQ(stats.gini, 0.0);
}

TEST(LoadStats, GiniKnownHandValue) {
  // loads {1, 3}: G = (2*(1*1 + 2*3)/(2*4)) - 3/2 = 14/8 - 1.5 = 0.25.
  EXPECT_NEAR(load_stats({1, 3}).gini, 0.25, 1e-12);
}

}  // namespace
}  // namespace manet::lm
