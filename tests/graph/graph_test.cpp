#include "graph/graph.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace manet::graph {
namespace {

TEST(Graph, EmptyGraph) {
  const Graph g(0);
  EXPECT_EQ(g.vertex_count(), 0u);
  EXPECT_EQ(g.edge_count(), 0u);
  EXPECT_DOUBLE_EQ(g.average_degree(), 0.0);
}

TEST(Graph, IsolatedVertices) {
  const Graph g(5);
  EXPECT_EQ(g.vertex_count(), 5u);
  for (NodeId v = 0; v < 5; ++v) EXPECT_EQ(g.degree(v), 0u);
}

TEST(Graph, PathGraphAdjacency) {
  const std::vector<Edge> edges{{0, 1}, {1, 2}, {2, 3}};
  const Graph g(4, edges);
  EXPECT_EQ(g.edge_count(), 3u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(1), 2u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));  // undirected
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_FALSE(g.has_edge(2, 2));  // self loop never present
}

TEST(Graph, NeighborsAreSortedAscending) {
  const std::vector<Edge> edges{{0, 3}, {0, 1}, {0, 2}, {1, 3}};
  const Graph g(4, edges);
  const auto nbrs = g.neighbors(0);
  ASSERT_EQ(nbrs.size(), 3u);
  EXPECT_EQ(nbrs[0], 1u);
  EXPECT_EQ(nbrs[1], 2u);
  EXPECT_EQ(nbrs[2], 3u);
}

TEST(Graph, EdgeListIsCanonicalSorted) {
  const std::vector<Edge> edges{{2, 3}, {0, 1}, {1, 2}};
  const Graph g(4, edges);
  const auto list = g.edges();
  ASSERT_EQ(list.size(), 3u);
  EXPECT_EQ(list[0], (Edge{0, 1}));
  EXPECT_EQ(list[1], (Edge{1, 2}));
  EXPECT_EQ(list[2], (Edge{2, 3}));
}

TEST(Graph, AverageDegreeOfCompleteGraph) {
  std::vector<Edge> edges;
  const NodeId n = 6;
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) edges.push_back({u, v});
  }
  const Graph g(n, edges);
  EXPECT_DOUBLE_EQ(g.average_degree(), 5.0);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = 0; v < n; ++v) EXPECT_EQ(g.has_edge(u, v), u != v);
  }
}

TEST(InducedSubgraph, KeepAllIsIdentity) {
  const Graph g(4, std::vector<Edge>{{0, 1}, {1, 2}, {2, 3}});
  const auto sub = induced_subgraph(g, {true, true, true, true});
  EXPECT_EQ(sub.graph.vertex_count(), 4u);
  EXPECT_EQ(sub.graph.edge_count(), 3u);
  for (NodeId v = 0; v < 4; ++v) {
    EXPECT_EQ(sub.to_original[v], v);
    EXPECT_EQ(sub.to_new[v], v);
  }
}

TEST(InducedSubgraph, DropsVertexAndIncidentEdges) {
  const Graph g(4, std::vector<Edge>{{0, 1}, {1, 2}, {2, 3}});
  const auto sub = induced_subgraph(g, {true, false, true, true});
  EXPECT_EQ(sub.graph.vertex_count(), 3u);
  EXPECT_EQ(sub.graph.edge_count(), 1u);  // only (2,3) survives
  EXPECT_EQ(sub.to_new[1], kInvalidNode);
  // Relabeled: original 2 -> new 1, original 3 -> new 2.
  EXPECT_TRUE(sub.graph.has_edge(sub.to_new[2], sub.to_new[3]));
  EXPECT_EQ(sub.to_original[sub.to_new[3]], 3u);
}

TEST(InducedSubgraph, KeepNoneIsEmpty) {
  const Graph g(3, std::vector<Edge>{{0, 1}});
  const auto sub = induced_subgraph(g, {false, false, false});
  EXPECT_EQ(sub.graph.vertex_count(), 0u);
  EXPECT_TRUE(sub.to_original.empty());
}

TEST(InducedSubgraph, PreservesAdjacencyOnSurvivors) {
  std::vector<Edge> edges;
  const NodeId n = 8;
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      if ((u + v) % 3 != 0) edges.push_back({u, v});
    }
  }
  const Graph g(n, edges);
  std::vector<bool> keep{true, false, true, true, false, true, true, true};
  const auto sub = induced_subgraph(g, keep);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = 0; v < n; ++v) {
      if (u == v || !keep[u] || !keep[v]) continue;
      EXPECT_EQ(sub.graph.has_edge(sub.to_new[u], sub.to_new[v]), g.has_edge(u, v));
    }
  }
}

TEST(GraphDeath, RejectsNonCanonicalEdges) {
  EXPECT_DEATH((Graph(3, std::vector<Edge>{{1, 0}})), "canonical");
  EXPECT_DEATH((Graph(3, std::vector<Edge>{{1, 1}})), "canonical");
}

TEST(GraphDeath, RejectsOutOfRangeEndpoint) {
  EXPECT_DEATH((Graph(3, std::vector<Edge>{{0, 3}})), "out of range");
}

TEST(GraphDeath, RejectsDuplicateEdges) {
  EXPECT_DEATH((Graph(3, std::vector<Edge>{{0, 1}, {0, 1}})), "duplicate");
}

}  // namespace
}  // namespace manet::graph
