#include "net/lossy_channel.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace manet::net {
namespace {

sim::FaultConfig with_loss(double p) {
  sim::FaultConfig cfg;
  cfg.loss = p;
  return cfg;
}

TEST(LossyChannel, ZeroLossAlwaysDeliversAtIdealCost) {
  LossyChannel ch(with_loss(0.0), 1);
  for (Size hops = 0; hops <= 8; ++hops) {
    const auto a = ch.try_deliver(hops);
    EXPECT_TRUE(a.delivered);
    EXPECT_EQ(a.packets, static_cast<PacketCount>(hops));
  }
  EXPECT_EQ(ch.packets_dropped(), 0u);
}

TEST(LossyChannel, ZeroLossConsumesNoRng) {
  // The zero-cost contract: at p = 0 the channel must not advance its RNG,
  // so a later lossy draw sequence is unaffected by earlier p = 0 traffic.
  sim::FaultConfig cfg = with_loss(0.0);
  cfg.force = true;
  LossyChannel quiet(cfg, 77);
  for (int i = 0; i < 1000; ++i) quiet.try_deliver(5);

  // Two channels, same seed: one pre-warmed through p=0 config, one fresh.
  // Both switch conceptually to the same draw stream; since p=0 draws
  // nothing, their internal RNGs agree — verified indirectly by cloning the
  // seed into a lossy channel and a (p=0 traffic, then same config) pair not
  // being constructible; the direct observable is total packet accounting.
  EXPECT_EQ(quiet.packets_sent(), 5000u);
  EXPECT_EQ(quiet.packets_dropped(), 0u);
}

TEST(LossyChannel, CertainLossDropsAtFirstHop) {
  LossyChannel ch(with_loss(1.0), 2);
  for (int i = 0; i < 10; ++i) {
    const auto a = ch.try_deliver(6);
    EXPECT_FALSE(a.delivered);
    EXPECT_EQ(a.packets, 1u) << "a packet dropped at hop 1 consumed 1 transmission";
  }
  EXPECT_EQ(ch.packets_dropped(), 10u);
  // hops == 0 still delivers for free even at p = 1.
  EXPECT_TRUE(ch.try_deliver(0).delivered);
}

TEST(LossyChannel, DeliveryRateMatchesPerHopBernoulli) {
  const double p = 0.1;
  const Size hops = 4;
  LossyChannel ch(with_loss(p), 3);
  const int trials = 20000;
  int delivered = 0;
  for (int i = 0; i < trials; ++i) {
    if (ch.try_deliver(hops).delivered) ++delivered;
  }
  const double expect = std::pow(1.0 - p, static_cast<double>(hops));
  const double got = static_cast<double>(delivered) / trials;
  EXPECT_NEAR(got, expect, 0.02);
  EXPECT_GT(ch.packets_dropped(), 0u);
  EXPECT_GT(ch.packets_sent(), ch.packets_dropped());
}

TEST(LossyChannel, SameSeedSameSequence) {
  LossyChannel a(with_loss(0.3), 9);
  LossyChannel b(with_loss(0.3), 9);
  for (int i = 0; i < 500; ++i) {
    const auto ra = a.try_deliver(3);
    const auto rb = b.try_deliver(3);
    EXPECT_EQ(ra.delivered, rb.delivered);
    EXPECT_EQ(ra.packets, rb.packets);
  }
}

TEST(LossyChannel, BurstChainRaisesLossInBadState) {
  sim::FaultConfig cfg;
  cfg.burst_loss = 1.0;  // bad state drops everything
  cfg.burst_on = 1.0;    // enter bad state immediately
  cfg.burst_len = 1e9;   // never leave it
  LossyChannel ch(cfg, 4);
  EXPECT_DOUBLE_EQ(ch.current_loss(), 0.0);  // chain starts good
  // First packet flips the chain to bad; from then on everything drops.
  ch.try_deliver(1);
  EXPECT_DOUBLE_EQ(ch.current_loss(), 1.0);
  for (int i = 0; i < 20; ++i) EXPECT_FALSE(ch.try_deliver(3).delivered);
}

TEST(LossyChannel, BurstChainRecovers) {
  sim::FaultConfig cfg;
  cfg.burst_loss = 1.0;
  cfg.burst_on = 1.0;
  cfg.burst_len = 1.0;  // P(bad -> good) = 1: one-packet bursts
  LossyChannel ch(cfg, 4);
  // The chain oscillates; over many sends some must be delivered again.
  int delivered = 0;
  for (int i = 0; i < 200; ++i) {
    if (ch.try_deliver(1).delivered) ++delivered;
  }
  EXPECT_GT(delivered, 0);
  EXPECT_LT(delivered, 200);
}

}  // namespace
}  // namespace manet::net
