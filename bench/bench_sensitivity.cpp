/// E20 (extension): parameter sensitivity of the handoff rates at fixed
/// |V| = 1024. The paper's eq. (4) makes f0 — and through it every handoff
/// frequency — proportional to node speed mu and inversely proportional to
/// R_TX; mean degree (via R_TX at fixed density) sets the constant. This
/// bench verifies both proportionalities and the tick-robustness of the
/// sampled measurement.

#include "bench_util.hpp"

using namespace manet;

int main() {
  bench::print_header(
      "E20  bench_sensitivity — speed / degree / tick sensitivity (|V| = 1024)",
      "phi, gamma ~ mu (eq. 4 linearity); mild degree dependence; tick-stable");

  exp::RunOptions opts;
  opts.track_events = false;
  opts.track_states = false;
  opts.measure_hops = false;

  {
    analysis::TextTable table({"mu (m/s)", "f0", "f0/mu", "phi", "gamma", "total",
                               "total/mu"});
    for (const double mu : {0.5, 1.0, 2.0, 4.0}) {
      auto cfg = bench::paper_scenario();
      cfg.n = 1024;
      cfg.mu = mu;
      const auto agg = exp::run_replications(cfg, bench::standard_replications(), opts);
      const double f0 = agg.mean("f0");
      const double total = agg.mean("total_rate");
      table.add_row({bench::fixed(mu, 3), bench::cell(agg, "f0"), bench::fixed(f0 / mu, 4),
                     bench::cell(agg, "phi_rate"), bench::cell(agg, "gamma_rate"),
                     bench::cell(agg, "total_rate"), bench::fixed(total / mu, 4)});
    }
    std::printf("%s", table.to_string("speed sweep (paper eq. 4: f0 ~ mu/R_TX)").c_str());
  }

  {
    analysis::TextTable table({"target degree", "R_TX", "f0", "total", "levels"});
    for (const double degree : {8.0, 12.0, 18.0, 24.0}) {
      auto cfg = bench::paper_scenario();
      cfg.n = 1024;
      cfg.target_degree = degree;
      const auto agg = exp::run_replications(cfg, bench::standard_replications(), opts);
      table.add_row({bench::fixed(degree, 3), bench::fixed(cfg.tx_radius(), 4),
                     bench::cell(agg, "f0"), bench::cell(agg, "total_rate"),
                     bench::cell(agg, "levels")});
    }
    std::printf("%s", table.to_string("degree sweep (denser radio = slower link churn)").c_str());
  }

  {
    analysis::TextTable table({"tick (s)", "f0", "phi", "gamma", "total"});
    for (const double tick : {0.5, 1.0, 2.0}) {
      auto cfg = bench::paper_scenario();
      cfg.n = 1024;
      cfg.tick = tick;
      const auto agg = exp::run_replications(cfg, bench::standard_replications(), opts);
      table.add_row({bench::fixed(tick, 3), bench::cell(agg, "f0"),
                     bench::cell(agg, "phi_rate"), bench::cell(agg, "gamma_rate"),
                     bench::cell(agg, "total_rate")});
    }
    std::printf("%s",
                table.to_string("sampling-tick robustness (DESIGN.md validation)").c_str());
  }

  std::printf(
      "\nreading: f0 is near-proportional to mu while the sampler resolves\n"
      "the motion (mu*tick << R_TX); at mu = 4 a node covers ~2 R_TX per\n"
      "tick and flickers alias, flattening f0/mu. Larger degree = bigger\n"
      "clusters = fewer levels = lower absolute overhead (constants, not\n"
      "growth order). Absolute rates scale ~1.4x per tick halving from the\n"
      "same aliasing, which is why all sweeps fix tick = 1 s.\n");
  return 0;
}
