#pragma once

#include "cluster/election.hpp"

/// \file alca.hpp
/// Asynchronous Linked Cluster Algorithm (ALCA) election, the clustering rule
/// the paper assumes throughout (Sections 1.2 and 2.2).
///
/// Rule (paper Section 2.2): vertex u elects, as its clusterhead, the vertex
/// with the largest original ID in u's *closed* neighborhood N[u] = {u} u
/// N(u). A vertex v is a clusterhead iff some vertex (possibly v itself)
/// elected it. Example from the paper's Fig. 1: node 97 is elected because it
/// is the largest in its own neighborhood; node 68 is elected because it is
/// the largest in node 63's neighborhood even though 68 is not the largest in
/// its own.
///
/// The result is the unique fixed point of the asynchronous message protocol
/// (highest-ID wins is confluent), so computing it directly is equivalent to
/// running the distributed rounds to convergence.

namespace manet::cluster {

class Alca final : public ElectionAlgorithm {
 public:
  ElectionResult elect(const graph::Graph& g, std::span<const NodeId> ids) const override;
  const char* name() const override { return "alca"; }
};

/// Convenience free function.
ElectionResult alca_elect(const graph::Graph& g, std::span<const NodeId> ids);

}  // namespace manet::cluster
