#pragma once

#include <span>

#include "exp/montecarlo.hpp"

/// \file campaign.hpp
/// Scaling campaigns: the same scenario run over a sweep of node counts,
/// producing the (n, metric) series that the model fitter (analysis/
/// model_fit.hpp) classifies. This is the machinery behind the headline
/// experiments E8/E9/E14.

namespace manet::exp {

struct SweepPoint {
  Size n = 0;
  AggregatedMetrics metrics;
};

struct Campaign {
  std::vector<SweepPoint> points;

  /// Extract the (n, mean metric) series over points that carry the metric.
  /// Points where the metric is absent (AggregatedMetrics::mean returns NaN)
  /// are excluded from the series; the number of excluded points is returned
  /// and a warning naming the metric and the affected node counts is logged
  /// through common::log, so a sweep plot can never thin silently.
  Size series(const std::string& metric, std::vector<double>& ns,
              std::vector<double>& ys) const;

  /// Same, plus the standard error of each mean (for bootstrap fits).
  Size series_with_error(const std::string& metric, std::vector<double>& ns,
                         std::vector<double>& ys, std::vector<double>& stderrs) const;
};

/// Run \p replications of \p base at every node count in \p node_counts.
Campaign sweep_node_count(const ScenarioConfig& base, std::span<const Size> node_counts,
                          Size replications, const RunOptions& options = RunOptions{},
                          common::ThreadPool* pool = nullptr);

}  // namespace manet::exp
