#include "mobility/group.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/check.hpp"

namespace manet::mobility {

ReferencePointGroup::ReferencePointGroup(const geom::Region& region, Size n, Params params,
                                         std::uint64_t seed)
    : region_(region), params_(params) {
  MANET_CHECK(params_.group_size >= 1);
  MANET_CHECK(params_.leader_speed > 0.0);
  MANET_CHECK(params_.member_speed >= 0.0);

  const Size n_groups = (n + params_.group_size - 1) / params_.group_size;
  // Default jitter radius: size the group disk so that its area matches the
  // group's share of the region (groups tile the space loosely).
  jitter_radius_ = params_.member_radius > 0.0
                       ? params_.member_radius
                       : std::sqrt(region.area() / (std::numbers::pi *
                                                    static_cast<double>(n_groups))) *
                             0.7;

  positions_.resize(n);
  members_.resize(n);
  group_of_.resize(n);
  leaders_.resize(n_groups);
  rngs_.reserve(n_groups);
  for (Size gr = 0; gr < n_groups; ++gr) {
    rngs_.emplace_back(common::derive_seed(seed, gr));
    leaders_[gr].origin = region_.sample(rngs_[gr]);
    leader_new_leg(gr, 0.0);
  }
  for (NodeId v = 0; v < n; ++v) {
    const Size gr = v / params_.group_size;
    group_of_[v] = gr;
    auto& rng = rngs_[gr];
    const double r = jitter_radius_ * std::sqrt(common::uniform01(rng));
    const double theta = common::uniform(rng, 0.0, 2.0 * std::numbers::pi);
    members_[v].offset = {r * std::cos(theta), r * std::sin(theta)};
    members_[v].offset_dest = members_[v].offset;
    positions_[v] = region_.clamp(leaders_[gr].origin + members_[v].offset);
  }
}

void ReferencePointGroup::leader_new_leg(Size group, Time at) {
  Leader& leader = leaders_[group];
  leader.dest = region_.sample(rngs_[group]);
  leader.depart = at;
  const double travel =
      std::max(geom::distance(leader.origin, leader.dest) / params_.leader_speed, 1e-9);
  leader.arrive = at + travel;
}

geom::Vec2 ReferencePointGroup::leader_pos(const Leader& leader, Time t) const {
  if (t <= leader.depart) return leader.origin;
  const double frac = (t - leader.depart) / (leader.arrive - leader.depart);
  return leader.origin + (leader.dest - leader.origin) * std::min(frac, 1.0);
}

geom::Vec2 ReferencePointGroup::reference_point(Size group) const {
  MANET_CHECK(group < leaders_.size());
  return leader_pos(leaders_[group], now_);
}

void ReferencePointGroup::advance_to(Time t) {
  MANET_CHECK_MSG(t >= now_, "mobility time must be monotone");
  const double dt = t - now_;

  // Advance reference points along their random-waypoint legs (consume any
  // legs completed within the interval).
  for (Size gr = 0; gr < leaders_.size(); ++gr) {
    Leader& leader = leaders_[gr];
    while (t >= leader.arrive) {
      leader.origin = leader.dest;
      leader_new_leg(gr, leader.arrive);
    }
  }

  // Members drift toward their offset waypoints inside the jitter disk.
  for (NodeId v = 0; v < positions_.size(); ++v) {
    Member& member = members_[v];
    auto& rng = rngs_[group_of_[v]];
    const geom::Vec2 gap = member.offset_dest - member.offset;
    const double gap_len = gap.norm();
    const double step = params_.member_speed * dt;
    if (gap_len <= step || gap_len < 1e-12) {
      member.offset = member.offset_dest;
      const double r = jitter_radius_ * std::sqrt(common::uniform01(rng));
      const double theta = common::uniform(rng, 0.0, 2.0 * std::numbers::pi);
      member.offset_dest = {r * std::cos(theta), r * std::sin(theta)};
    } else {
      member.offset += gap * (step / gap_len);
    }
    positions_[v] =
        region_.clamp(leader_pos(leaders_[group_of_[v]], t) + member.offset);
  }

  now_ = t;
}

}  // namespace manet::mobility
