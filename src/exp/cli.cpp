#include "exp/cli.hpp"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <sstream>

namespace manet::exp {

namespace {

bool parse_size(const std::string& text, Size& out) {
  // Digits only: strtoull on its own would silently *wrap* a negative input
  // ("-3" -> 18446744073709551613) and accept "+3" / " 3" / "0x10"; a
  // malformed count must be rejected, not reinterpreted.
  if (text.empty() || text.find_first_not_of("0123456789") != std::string::npos) {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || errno == ERANGE ||
      value > std::numeric_limits<Size>::max()) {
    return false;
  }
  out = static_cast<Size>(value);
  return true;
}

bool parse_double(const std::string& text, double& out) {
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  // Reject "nan"/"inf" (strtod accepts them): every numeric flag feeds a
  // rate, duration or threshold where a non-finite value silently corrupts
  // the whole run instead of failing here.
  if (end == nullptr || *end != '\0' || text.empty() || !std::isfinite(value)) {
    return false;
  }
  out = value;
  return true;
}

/// Split a "--flag=value" token. Returns true (and truncates \p flag at the
/// '=') when an inline value is present; both CLI parsers accept the form
/// for every value-taking flag and reject it on boolean flags.
bool split_inline_value(std::string& flag, std::string& value) {
  if (flag.size() < 3 || flag[0] != '-' || flag[1] != '-') return false;
  const auto eq = flag.find('=');
  if (eq == std::string::npos) return false;
  value = flag.substr(eq + 1);
  flag.resize(eq);
  return true;
}

bool parse_size_list(const std::string& text, std::vector<Size>& out) {
  std::stringstream ss(text);
  std::string item;
  while (std::getline(ss, item, ',')) {
    Size value = 0;
    if (!parse_size(item, value) || value == 0) return false;
    out.push_back(value);
  }
  return !out.empty();
}

bool parse_shard(const std::string& text, Size& index, Size& count) {
  const auto slash = text.find('/');
  if (slash == std::string::npos) return false;
  Size i = 0;
  Size k = 0;
  if (!parse_size(text.substr(0, slash), i) || !parse_size(text.substr(slash + 1), k)) {
    return false;
  }
  if (k < 1 || i >= k) return false;
  index = i;
  count = k;
  return true;
}

}  // namespace

std::string campaign_cli_usage(const std::string& program) {
  return "usage: " + program +
         " campaign [flags]\n"
         "modes (default: execute pending units):\n"
         "  --plan             print the unit ledger (with status when a dir is known)\n"
         "  --merge            validate coverage (no gaps, no strays) and write the\n"
         "                     merged CAMPAIGN_<name>.json artifact\n"
         "campaign identity:\n"
         "  --spec FILE        campaign spec (schema manet-campaign-spec/1); optional\n"
         "                     when the campaign dir already has a campaign.json\n"
         "  --out DIR          campaign directory for a fresh run (refuses to rerun\n"
         "                     checkpointed units)\n"
         "  --resume DIR       continue a campaign: skip units with valid checkpoints\n"
         "execution:\n"
         "  --shard i/k        own only units with index mod k == i (k independent\n"
         "                     processes split one campaign; merge afterwards)\n"
         "  --threads N        replication worker threads per unit (0 = hardware)\n"
         "  --max-units N      stop after executing N units (time-boxed slices)\n"
         "  --help             this text\n"
         "\n"
         "Spec format, checkpoint schema and worked examples: docs/CAMPAIGNS.md\n";
}

CampaignCliParseResult parse_campaign_cli(int argc, const char* const* argv) {
  CampaignCliParseResult result;
  CampaignCliOptions& opt = result.options;

  auto fail = [&](const std::string& message) {
    result.ok = false;
    result.error = message;
    return result;
  };

  std::string out_dir;
  std::string resume_dir;
  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    std::string inline_value;
    const bool has_inline = split_inline_value(flag, inline_value);
    bool inline_used = false;
    auto next = [&]() -> const char* {
      if (has_inline) {
        inline_used = true;
        return inline_value.c_str();
      }
      return i + 1 < argc ? argv[++i] : nullptr;
    };

    if (flag == "--help" || flag == "-h") {
      opt.show_help = true;
      result.ok = true;
      return result;
    } else if (flag == "--plan") {
      opt.plan = true;
    } else if (flag == "--merge") {
      opt.merge = true;
    } else if (flag == "--spec") {
      const char* value = next();
      if (value == nullptr) return fail("--spec needs a file path");
      opt.spec_path = value;
    } else if (flag == "--out") {
      const char* value = next();
      if (value == nullptr) return fail("--out needs a directory");
      out_dir = value;
    } else if (flag == "--resume") {
      const char* value = next();
      if (value == nullptr) return fail("--resume needs a campaign directory");
      resume_dir = value;
    } else if (flag == "--shard") {
      const char* value = next();
      if (value == nullptr || !parse_shard(value, opt.shard_index, opt.shard_count)) {
        return fail("--shard needs i/k with 0 <= i < k");
      }
    } else if (flag == "--threads" || flag == "--max-units") {
      const char* value = next();
      Size parsed = 0;
      if (value == nullptr || !parse_size(value, parsed)) {
        return fail(flag + " needs an unsigned integer");
      }
      if (flag == "--threads") opt.threads = parsed;
      else opt.max_units = parsed;
    } else {
      return fail("unknown campaign flag '" + flag + "'");
    }
    if (has_inline && !inline_used) {
      return fail("'" + flag + "' does not take a value");
    }
  }

  if (!out_dir.empty() && !resume_dir.empty()) {
    return fail("use either --out (fresh campaign) or --resume (continue), not both");
  }
  opt.dir = out_dir.empty() ? resume_dir : out_dir;
  opt.resume = !resume_dir.empty();

  if (opt.plan && opt.merge) return fail("--plan and --merge are mutually exclusive");
  if (opt.merge && opt.shard_count > 1) {
    return fail("--merge is a single-process step; run it after all shards complete");
  }
  if (opt.spec_path.empty() && opt.dir.empty()) {
    return fail("campaign needs --spec FILE and/or a campaign directory "
                "(--out/--resume DIR)");
  }
  if (!opt.plan && opt.dir.empty()) {
    return fail("--out DIR (or --resume DIR) is required to execute or merge; "
                "--plan previews without a directory");
  }
  result.ok = true;
  return result;
}

std::string cli_usage(const std::string& program) {
  return "usage: " + program +
         " [flags]\n"
         "scenario:\n"
         "  --n N              node count (default 256)\n"
         "  --density D        nodes per m^2 (default 1.0)\n"
         "  --mu V             node speed m/s (default 1.0)\n"
         "  --seed S           RNG seed\n"
         "  --tick T           sampling interval s (default 1)\n"
         "  --warmup T         settle time s (default 20)\n"
         "  --duration T       measured window s (default 80)\n"
         "  --mobility M       rwp | rd | gm | rpgm | static (default rwp)\n"
         "  --radius R         connectivity | degree (default connectivity)\n"
         "  --degree D         target mean degree for --radius degree\n"
         "  --margin C         connectivity margin constant\n"
         "  --algo A           alca | maxmin1 | maxmin2 (default alca)\n"
         "  --strategy S       successor | weighted | unweighted\n"
         "  --links L          geometric | contraction (default geometric)\n"
         "  --beta B           geometric link range multiplier\n"
         "fault injection (any fault flag activates ARQ + repair):\n"
         "  --loss P           per-hop Bernoulli control-packet loss\n"
         "  --burst-loss P     Gilbert-Elliott bad-state per-hop loss\n"
         "  --burst-on P       per-packet P(chain enters bad state)\n"
         "  --burst-len N      mean bad-state sojourn in packets\n"
         "  --crash-rate R     node crash hazard (crashes /node/s)\n"
         "  --downtime T       mean rejoin delay after a crash, s\n"
         "  --retry-budget N   ARQ retransmissions after the first try\n"
         "  --arq-timeout T    first retransmission timeout, s\n"
         "  --audit T          server-audit / repair period, s\n"
         "  --outage-radius R  regional-outage disk radius, m\n"
         "  --outage-start T   outage onset (run time), s\n"
         "  --outage-duration T  outage length, s\n"
         "sessions + handover FSM (E29; session flags activate the plane):\n"
         "  --sessions         run long-lived sessions over the handover FSM plane\n"
         "  --session-rate R   session arrivals /node/s (default 0.2)\n"
         "  --session-duration T  mean session lifetime, s (default 4)\n"
         "  --session-pps R    per-session offered packet rate /s (default 4)\n"
         "  --handover-timeout T  first signalling-attempt timeout, s (default 0.2)\n"
         "  --handover-retries N  signalling reattempts per stage (default 3)\n"
         "  --handover-backoff B  timeout multiplier per retry, >= 1 (default 2)\n"
         "measurement:\n"
         "  --gls              run the GLS baseline side by side\n"
         "  --registration     track owner-driven registration updates\n"
         "  --routing          measure routing table size + path stretch\n"
         "  --no-events        skip the reorg event taxonomy\n"
         "  --no-states        skip ALCA state occupancy\n"
         "  --no-hops          skip the h_k measurement\n"
         "tick pipeline (both default on; see docs/ARCHITECTURE.md):\n"
         "  --full-tick        rebuild everything every tick (reference arm;\n"
         "                     disables the incremental pipeline)\n"
         "  --no-repair        incremental ticks rebuild changed hierarchies\n"
         "                     with HierarchyBuilder instead of localized repair\n"
         "  --threads N        sharded-tick worker threads (default 1 = sequential,\n"
         "                     0 = hardware); output is identical at any N\n"
         "  --shards N         sharded-tick shard count (rounded up to a power of\n"
         "                     two, max 1024; default 0 = auto from the worker\n"
         "                     count); output is identical at any N\n"
         "query serving (E31; see docs/QUERY_ENGINE.md):\n"
         "  --query-load N     serve N location lookups per measured tick through\n"
         "                     the epoch-gated lm::QueryEngine (default 0 = off);\n"
         "                     emits the query_* metrics, identical at any --threads\n"
         "campaign (in-process; `campaign` subcommand adds checkpoint/resume/shard):\n"
         "  --reps R           Monte-Carlo replications (default 1)\n"
         "  --sweep N1,N2,...  sweep node counts instead of a single run\n"
         "  --csv PATH         write sweep results as CSV\n"
         "  --json PATH        write single-run metrics as JSON\n"
         "observability:\n"
         "  --trace            record handoff/reorg events, print a summary\n"
         "  --trace-capacity N ring-buffer slots for --trace (default 4096)\n"
         "  --trace-sample N   keep every Nth trace event (default 1)\n"
         "  --metrics-json P   write live metrics registry + manifest (+ trace\n"
         "                     when --trace is on) as JSON to path P\n"
         "  --help             this text\n";
}

CliParseResult parse_cli(int argc, const char* const* argv) {
  CliParseResult result;
  CliOptions& opt = result.options;

  auto fail = [&](const std::string& message) {
    result.ok = false;
    result.error = message;
    return result;
  };

  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    std::string inline_value;
    const bool has_inline = split_inline_value(flag, inline_value);
    bool inline_used = false;
    auto next = [&]() -> const char* {
      if (has_inline) {
        inline_used = true;
        return inline_value.c_str();
      }
      return i + 1 < argc ? argv[++i] : nullptr;
    };

    if (flag == "--help" || flag == "-h") {
      opt.show_help = true;
      result.ok = true;
      return result;
    } else if (flag == "--gls") {
      opt.run.run_gls = true;
    } else if (flag == "--registration") {
      opt.run.track_registration = true;
    } else if (flag == "--routing") {
      opt.run.measure_routing = true;
    } else if (flag == "--no-events") {
      opt.run.track_events = false;
    } else if (flag == "--no-states") {
      opt.run.track_states = false;
    } else if (flag == "--no-hops") {
      opt.run.measure_hops = false;
    } else if (flag == "--full-tick") {
      opt.run.incremental_tick = false;
    } else if (flag == "--no-repair") {
      opt.run.localized_repair = false;
    } else if (flag == "--mobility") {
      const char* value = next();
      if (value == nullptr) return fail("--mobility needs a value");
      const std::string v = value;
      if (v == "rwp") opt.scenario.mobility = MobilityKind::kRandomWaypoint;
      else if (v == "rd") opt.scenario.mobility = MobilityKind::kRandomDirection;
      else if (v == "gm") opt.scenario.mobility = MobilityKind::kGaussMarkov;
      else if (v == "rpgm") opt.scenario.mobility = MobilityKind::kGroup;
      else if (v == "static") opt.scenario.mobility = MobilityKind::kStatic;
      else return fail("unknown mobility '" + v + "'");
    } else if (flag == "--radius") {
      const char* value = next();
      if (value == nullptr) return fail("--radius needs a value");
      const std::string v = value;
      if (v == "connectivity") opt.scenario.radius_policy = RadiusPolicy::kConnectivity;
      else if (v == "degree") opt.scenario.radius_policy = RadiusPolicy::kMeanDegree;
      else return fail("unknown radius policy '" + v + "'");
    } else if (flag == "--algo") {
      const char* value = next();
      if (value == nullptr) return fail("--algo needs a value");
      const std::string v = value;
      if (v == "alca") opt.scenario.cluster_algo = ClusterAlgo::kAlca;
      else if (v == "maxmin1") opt.scenario.cluster_algo = ClusterAlgo::kMaxMin1;
      else if (v == "maxmin2") opt.scenario.cluster_algo = ClusterAlgo::kMaxMin2;
      else return fail("unknown clustering algorithm '" + v + "'");
    } else if (flag == "--strategy") {
      const char* value = next();
      if (value == nullptr) return fail("--strategy needs a value");
      const std::string v = value;
      if (v == "successor") {
        opt.scenario.handoff.select.strategy = lm::SelectStrategy::kFlatSuccessor;
      } else if (v == "weighted") {
        opt.scenario.handoff.select.strategy = lm::SelectStrategy::kWeightedDescent;
      } else if (v == "unweighted") {
        opt.scenario.handoff.select.strategy = lm::SelectStrategy::kUnweightedDescent;
      } else {
        return fail("unknown strategy '" + v + "'");
      }
    } else if (flag == "--links") {
      const char* value = next();
      if (value == nullptr) return fail("--links needs a value");
      const std::string v = value;
      if (v == "geometric") opt.scenario.geometric_links = true;
      else if (v == "contraction") opt.scenario.geometric_links = false;
      else return fail("unknown link model '" + v + "'");
    } else if (flag == "--csv") {
      const char* value = next();
      if (value == nullptr) return fail("--csv needs a path");
      opt.csv_path = value;
    } else if (flag == "--json") {
      const char* value = next();
      if (value == nullptr) return fail("--json needs a path");
      opt.json_path = value;
    } else if (flag == "--metrics-json") {
      const char* value = next();
      if (value == nullptr) return fail("--metrics-json needs a path");
      opt.metrics_json_path = value;
    } else if (flag == "--trace") {
      opt.trace = true;
    } else if (flag == "--trace-capacity" || flag == "--trace-sample") {
      const char* value = next();
      Size parsed = 0;
      if (value == nullptr || !parse_size(value, parsed) || parsed == 0) {
        return fail(flag + " needs a positive integer");
      }
      if (flag == "--trace-capacity") opt.trace_capacity = parsed;
      else opt.trace_sample = parsed;
    } else if (flag == "--sweep") {
      const char* value = next();
      if (value == nullptr || !parse_size_list(value, opt.sweep)) {
        return fail("--sweep needs a comma-separated list of node counts");
      }
    } else if (flag == "--n" || flag == "--seed" || flag == "--reps" ||
               flag == "--threads" || flag == "--shards" || flag == "--query-load") {
      const char* value = next();
      Size parsed = 0;
      if (value == nullptr || !parse_size(value, parsed)) {
        return fail(flag + " needs an unsigned integer");
      }
      if (flag == "--n") opt.scenario.n = parsed;
      else if (flag == "--seed") opt.scenario.seed = parsed;
      else if (flag == "--threads") opt.run.threads = parsed;
      else if (flag == "--shards") opt.run.shards = parsed;
      else if (flag == "--query-load") opt.run.query_load = parsed;
      else opt.replications = parsed;
    } else if (flag == "--retry-budget") {
      const char* value = next();
      Size parsed = 0;
      if (value == nullptr || !parse_size(value, parsed)) {
        return fail(flag + " needs an unsigned integer");
      }
      opt.scenario.fault.retry_budget = parsed;
    } else if (flag == "--sessions") {
      opt.scenario.sessions = true;
    } else if (flag == "--handover-retries") {
      const char* value = next();
      Size parsed = 0;
      if (value == nullptr || !parse_size(value, parsed)) {
        return fail(flag + " needs an unsigned integer");
      }
      opt.scenario.handover.max_retries = parsed;
      opt.scenario.sessions = true;
    } else if (flag == "--session-rate" || flag == "--session-duration" ||
               flag == "--session-pps" || flag == "--handover-timeout" ||
               flag == "--handover-backoff") {
      const char* value = next();
      double parsed = 0.0;
      if (value == nullptr || !parse_double(value, parsed) || parsed <= 0.0) {
        return fail(flag + " needs a positive number");
      }
      opt.scenario.sessions = true;
      if (flag == "--session-rate") opt.scenario.session.sessions_per_node_per_sec = parsed;
      else if (flag == "--session-duration") opt.scenario.session.mean_duration = parsed;
      else if (flag == "--session-pps") opt.scenario.session.packets_per_sec = parsed;
      else if (flag == "--handover-timeout") opt.scenario.handover.timeout = parsed;
      else opt.scenario.handover.backoff = parsed;
    } else if (flag == "--density" || flag == "--mu" || flag == "--tick" ||
               flag == "--warmup" || flag == "--duration" || flag == "--degree" ||
               flag == "--margin" || flag == "--beta") {
      const char* value = next();
      double parsed = 0.0;
      if (value == nullptr || !parse_double(value, parsed)) {
        return fail(flag + " needs a number");
      }
      if (flag == "--density") opt.scenario.density = parsed;
      else if (flag == "--mu") opt.scenario.mu = parsed;
      else if (flag == "--tick") opt.scenario.tick = parsed;
      else if (flag == "--warmup") opt.scenario.warmup = parsed;
      else if (flag == "--duration") opt.scenario.duration = parsed;
      else if (flag == "--degree") opt.scenario.target_degree = parsed;
      else if (flag == "--margin") opt.scenario.connectivity_margin = parsed;
      else opt.scenario.link_beta = parsed;
    } else if (flag == "--loss" || flag == "--burst-loss" || flag == "--burst-on" ||
               flag == "--burst-len" || flag == "--crash-rate" || flag == "--downtime" ||
               flag == "--arq-timeout" || flag == "--audit" ||
               flag == "--outage-radius" || flag == "--outage-start" ||
               flag == "--outage-duration") {
      const char* value = next();
      double parsed = 0.0;
      if (value == nullptr || !parse_double(value, parsed) || parsed < 0.0) {
        return fail(flag + " needs a non-negative number");
      }
      sim::FaultConfig& fault = opt.scenario.fault;
      if (flag == "--loss") fault.loss = parsed;
      else if (flag == "--burst-loss") fault.burst_loss = parsed;
      else if (flag == "--burst-on") fault.burst_on = parsed;
      else if (flag == "--burst-len") fault.burst_len = parsed;
      else if (flag == "--crash-rate") fault.crash_rate = parsed;
      else if (flag == "--downtime") fault.mean_downtime = parsed;
      else if (flag == "--arq-timeout") fault.arq_timeout = parsed;
      else if (flag == "--audit") fault.audit_period = parsed;
      else if (flag == "--outage-radius") fault.outage_radius = parsed;
      else if (flag == "--outage-start") fault.outage_start = parsed;
      else fault.outage_duration = parsed;
    } else {
      return fail("unknown flag '" + flag + "'");
    }
    if (has_inline && !inline_used) {
      return fail("'" + flag + "' does not take a value");
    }
  }

  if (opt.scenario.n < 2) return fail("--n must be >= 2");
  if (opt.replications < 1) return fail("--reps must be >= 1");
  if (opt.scenario.handover.backoff < 1.0) return fail("--handover-backoff must be >= 1");
  if (opt.scenario.tick <= 0.0) return fail("--tick must be > 0");
  if (opt.scenario.warmup < 0.0) return fail("--warmup must be >= 0");
  if (opt.scenario.duration < 0.0) return fail("--duration must be >= 0");
  if (opt.scenario.density <= 0.0) return fail("--density must be > 0");
  result.ok = true;
  return result;
}

}  // namespace manet::exp
