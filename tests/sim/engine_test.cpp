#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace manet::sim {
namespace {

TEST(Engine, ClockStartsAtZero) {
  Engine engine;
  EXPECT_DOUBLE_EQ(engine.now(), 0.0);
}

TEST(Engine, RunUntilAdvancesClockToHorizon) {
  Engine engine;
  engine.run_until(10.0);
  EXPECT_DOUBLE_EQ(engine.now(), 10.0);
}

TEST(Engine, EventsFireAtScheduledTimes) {
  Engine engine;
  std::vector<Time> fired;
  engine.schedule_at(2.0, [&] { fired.push_back(engine.now()); });
  engine.schedule_in(5.0, [&] { fired.push_back(engine.now()); });
  const Size executed = engine.run_until(10.0);
  EXPECT_EQ(executed, 2u);
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_DOUBLE_EQ(fired[0], 2.0);
  EXPECT_DOUBLE_EQ(fired[1], 5.0);
}

TEST(Engine, EventAtHorizonFires) {
  Engine engine;
  bool fired = false;
  engine.schedule_at(10.0, [&] { fired = true; });
  engine.run_until(10.0);
  EXPECT_TRUE(fired);
}

TEST(Engine, EventBeyondHorizonDoesNotFire) {
  Engine engine;
  bool fired = false;
  engine.schedule_at(10.1, [&] { fired = true; });
  engine.run_until(10.0);
  EXPECT_FALSE(fired);
  engine.run_until(11.0);
  EXPECT_TRUE(fired);  // still pending, fires on the next run
}

TEST(Engine, EventsCanScheduleEvents) {
  Engine engine;
  std::vector<Time> fired;
  engine.schedule_at(1.0, [&] {
    fired.push_back(engine.now());
    engine.schedule_in(1.5, [&] { fired.push_back(engine.now()); });
  });
  engine.run_until(5.0);
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_DOUBLE_EQ(fired[1], 2.5);
}

TEST(Engine, RecurringEventFiresPeriodically) {
  Engine engine;
  int count = 0;
  engine.schedule_every(1.0, [&] { ++count; });
  engine.run_until(5.5);
  EXPECT_EQ(count, 5);  // t = 1, 2, 3, 4, 5
}

TEST(Engine, StopRecurringHalts) {
  Engine engine;
  int count = 0;
  const auto handle = engine.schedule_every(1.0, [&] { ++count; });
  engine.run_until(3.5);
  engine.stop_recurring(handle);
  engine.run_until(10.0);
  EXPECT_EQ(count, 3);
}

TEST(Engine, RecurringCanStopItself) {
  Engine engine;
  int count = 0;
  Engine::RecurringHandle handle{};
  handle = engine.schedule_every(1.0, [&] {
    if (++count == 2) engine.stop_recurring(handle);
  });
  engine.run_until(10.0);
  EXPECT_EQ(count, 2);
}

TEST(Engine, CancelOneShot) {
  Engine engine;
  bool fired = false;
  const EventId id = engine.schedule_at(1.0, [&] { fired = true; });
  EXPECT_TRUE(engine.cancel(id));
  engine.run_until(2.0);
  EXPECT_FALSE(fired);
}

TEST(Engine, StepExecutesExactlyOneEvent) {
  Engine engine;
  int count = 0;
  engine.schedule_at(1.0, [&] { ++count; });
  engine.schedule_at(2.0, [&] { ++count; });
  EXPECT_TRUE(engine.step());
  EXPECT_EQ(count, 1);
  EXPECT_DOUBLE_EQ(engine.now(), 1.0);
  EXPECT_TRUE(engine.step());
  EXPECT_FALSE(engine.step());
}

TEST(EngineDeath, RefusesPastScheduling) {
  Engine engine;
  engine.run_until(5.0);
  EXPECT_DEATH(engine.schedule_at(1.0, [] {}), "past");
}

}  // namespace
}  // namespace manet::sim
