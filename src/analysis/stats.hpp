#pragma once

#include <span>
#include <vector>

/// \file stats.hpp
/// Descriptive statistics for Monte-Carlo replications: running accumulator,
/// normal-approximation confidence intervals, quantiles.

namespace manet::analysis {

/// Single-pass accumulator (Welford) for mean/variance.
class Accumulator {
 public:
  void add(double x) noexcept;
  void merge(const Accumulator& other) noexcept;

  std::size_t count() const noexcept { return count_; }
  double mean() const noexcept { return mean_; }
  /// Unbiased sample variance; 0 when count < 2.
  double variance() const noexcept;
  double stddev() const noexcept;
  /// Standard error of the mean; 0 when count < 2.
  double stderr_mean() const noexcept;
  /// Half-width of the ~95% normal-approximation CI (1.96 * stderr).
  double ci95_halfwidth() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double ci95 = 0.0;  ///< half-width
  double min = 0.0;
  double max = 0.0;
};

Summary summarize(std::span<const double> xs);

/// Quantile by linear interpolation on the sorted copy, q in [0, 1].
double quantile(std::span<const double> xs, double q);

}  // namespace manet::analysis
