#include "cluster/stability.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace manet::cluster {

void HeadLifetimeTracker::observe(const Hierarchy& h, Time t) {
  MANET_CHECK_MSG(!started_ || t >= last_time_, "observation time must be monotone");

  const Level top = h.top_level();
  if (levels_.size() < top) levels_.resize(top);

  for (Level k = 1; k <= top; ++k) {
    LevelState& state = levels_[k - 1];
    const auto& ids = h.level(k).ids;

    // Mark current heads; births for new ones.
    present_.clear();
    present_.reserve(ids.size());
    for (const NodeId id : ids) {
      present_.insert(id);
      if (!state.alive.contains(id)) state.alive.insert_or_assign(id, t);
    }
    // Deaths: heads that vanished complete a tenure. Erasure is deferred —
    // FlatMap iteration must not race its own compaction.
    doomed_.clear();
    for (const auto& e : state.alive) {
      if (present_.contains(e.key)) continue;
      const double lifetime = t - e.value;
      state.lifetime_sum += lifetime;
      state.lifetime_max = std::max(state.lifetime_max, lifetime);
      ++state.completed;
      doomed_.push_back(e.key);
    }
    for (const NodeId id : doomed_) state.alive.erase(id);
  }
  // Levels beyond the current top: everything alive there dies now.
  for (Level k = top + 1; k <= levels_.size(); ++k) {
    LevelState& state = levels_[k - 1];
    for (const auto& e : state.alive) {
      const double lifetime = t - e.value;
      state.lifetime_sum += lifetime;
      state.lifetime_max = std::max(state.lifetime_max, lifetime);
      ++state.completed;
    }
    state.alive.clear();
  }

  last_time_ = t;
  started_ = true;
}

TenureStats HeadLifetimeTracker::stats(Level k) const {
  TenureStats out;
  MANET_CHECK(k >= 1);
  if (k > levels_.size()) return out;
  const LevelState& state = levels_[k - 1];
  out.completed = state.completed;
  out.max_lifetime = state.lifetime_max;
  if (state.completed > 0) {
    out.mean_lifetime = state.lifetime_sum / static_cast<double>(state.completed);
  }
  out.ongoing = state.alive.size();
  if (!state.alive.empty()) {
    double age_sum = 0.0;
    for (const auto& e : state.alive) age_sum += last_time_ - e.value;
    out.mean_ongoing_age = age_sum / static_cast<double>(state.alive.size());
  }
  return out;
}

Size HeadLifetimeTracker::total_completed() const {
  Size total = 0;
  for (const auto& state : levels_) total += state.completed;
  return total;
}

}  // namespace manet::cluster
