#include "lm/overhead.hpp"

#include <cstdio>

#include "common/check.hpp"

namespace manet::lm {

OverheadReport OverheadReport::from(const HandoffEngine& engine) {
  OverheadReport report;
  report.node_count = engine.node_count();
  report.window = engine.elapsed();
  report.phi_rate = engine.phi_rate();
  report.gamma_rate = engine.gamma_rate();
  report.unreachable_transfers = engine.unreachable_transfers();

  const auto& levels = engine.per_level();
  report.phi_per_level.resize(levels.size());
  report.gamma_per_level.resize(levels.size());
  report.migration_per_level.resize(levels.size());
  for (Level k = 0; k < levels.size(); ++k) {
    report.phi_per_level[k] = engine.phi_rate_at(k);
    report.gamma_per_level[k] = engine.gamma_rate_at(k);
    report.migration_per_level[k] = engine.migration_rate(k);
    report.phi_entries += levels[k].phi_entries;
    report.gamma_entries += levels[k].gamma_entries;
  }
  return report;
}

std::string OverheadReport::to_text() const {
  std::string out;
  char line[160];
  std::snprintf(line, sizeof(line),
                "n=%zu window=%.1fs phi=%.5f gamma=%.5f total=%.5f pkts/node/s\n",
                node_count, window, phi_rate, gamma_rate, total_rate());
  out += line;
  std::snprintf(line, sizeof(line), "%-6s %12s %12s %12s\n", "level", "phi_k", "gamma_k",
                "f_k");
  out += line;
  // Levels 0 and 1 carry no handoff by construction: a node IS its own
  // level-0 cluster and every node stores its own level-1 entry locally, so
  // transfers only start at k = 2 (paper Section 4). Enforce the invariant
  // here rather than silently rendering zeros.
  for (Level k = 0; k < phi_per_level.size() && k < 2; ++k) {
    MANET_CHECK_MSG(phi_per_level[k] == 0.0 && gamma_per_level[k] == 0.0,
                    "phi_k/gamma_k must be zero at levels 0..1 by construction");
  }
  for (Level k = 1; k < phi_per_level.size(); ++k) {
    // Skip dead rows (all-zero: level never materialized in this run); the
    // k = 1 row survives whenever f_1 is nonzero even though phi_1 = gamma_1
    // = 0 by the invariant above.
    if (phi_per_level[k] == 0.0 && gamma_per_level[k] == 0.0 &&
        migration_per_level[k] == 0.0) {
      continue;
    }
    std::snprintf(line, sizeof(line), "%-6u %12.6f %12.6f %12.6f\n", k, phi_per_level[k],
                  gamma_per_level[k], migration_per_level[k]);
    out += line;
  }
  return out;
}

}  // namespace manet::lm
