#include "viz/json.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>

#include "cluster/hierarchy_builder.hpp"

namespace manet::viz {
namespace {

TEST(JsonEscape, PassesPlainTextThrough) {
  EXPECT_EQ(json_escape("hello_world.42"), "hello_world.42");
}

TEST(JsonEscape, EscapesSpecials) {
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
}

TEST(JsonHierarchy, SmallGraphStructure) {
  // Path 0-1-2 with ids {5,1,9}: two level-1 clusters (heads 5 and 9).
  const graph::Graph g(3, std::vector<graph::Edge>{{0, 1}, {1, 2}});
  const std::vector<NodeId> ids{5, 1, 9};
  const auto h = cluster::HierarchyBuilder().build(g, ids);

  std::ostringstream os;
  write_hierarchy_json(os, h, /*with_addresses=*/true);
  const auto doc = os.str();

  EXPECT_NE(doc.find("\"levels\":"), std::string::npos);
  EXPECT_NE(doc.find("\"k\":0"), std::string::npos);
  EXPECT_NE(doc.find("\"k\":1"), std::string::npos);
  EXPECT_NE(doc.find("\"id\":5"), std::string::npos);
  EXPECT_NE(doc.find("\"id\":9"), std::string::npos);
  EXPECT_NE(doc.find("\"addresses\":{"), std::string::npos);
  // Node with id 1 belongs to cluster 9: address [.., 9, 1].
  EXPECT_NE(doc.find("\"1\":["), std::string::npos);
  // Balanced braces/brackets (cheap well-formedness check).
  EXPECT_EQ(std::count(doc.begin(), doc.end(), '{'),
            std::count(doc.begin(), doc.end(), '}'));
  EXPECT_EQ(std::count(doc.begin(), doc.end(), '['),
            std::count(doc.begin(), doc.end(), ']'));
}

TEST(JsonHierarchy, WithoutAddressesOmitsThem) {
  const graph::Graph g(2, std::vector<graph::Edge>{{0, 1}});
  const auto h = cluster::HierarchyBuilder().build(g);
  std::ostringstream os;
  write_hierarchy_json(os, h, false);
  EXPECT_EQ(os.str().find("addresses"), std::string::npos);
}

TEST(JsonMetrics, RendersNamesAndValues) {
  exp::RunMetrics m;
  m.set("phi_rate", 1.25);
  m.set("weird\"name", 2.0);
  m.set("nan_metric", std::nan(""));
  std::ostringstream os;
  write_metrics_json(os, m);
  const auto doc = os.str();
  EXPECT_NE(doc.find("\"phi_rate\":1.25"), std::string::npos);
  EXPECT_NE(doc.find("\"weird\\\"name\":2"), std::string::npos);
  EXPECT_NE(doc.find("\"nan_metric\":null"), std::string::npos);
}

TEST(JsonMetrics, EmptyMetricsIsEmptyObject) {
  std::ostringstream os;
  write_metrics_json(os, exp::RunMetrics{});
  EXPECT_EQ(os.str(), "{}\n");
}

}  // namespace
}  // namespace manet::viz
