#include "lm/rendezvous.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace manet::lm {
namespace {

TEST(Rendezvous, Deterministic) {
  const std::vector<NodeId> candidates{3, 7, 11, 19};
  EXPECT_EQ(rendezvous_pick(1, 42, candidates), rendezvous_pick(1, 42, candidates));
}

TEST(Rendezvous, WinnerIsIndependentOfCandidateOrder) {
  std::vector<NodeId> a{3, 7, 11, 19, 23};
  std::vector<NodeId> b{23, 11, 3, 19, 7};
  for (NodeId owner = 0; owner < 50; ++owner) {
    EXPECT_EQ(rendezvous_pick(5, owner, a), rendezvous_pick(5, owner, b));
  }
}

TEST(Rendezvous, MinimalDisruptionOnCandidateRemoval) {
  // The HRW property: removing a non-winning candidate never changes the
  // winner.
  const std::vector<NodeId> full{1, 2, 3, 4, 5, 6, 7, 8};
  for (NodeId owner = 0; owner < 200; ++owner) {
    const NodeId winner = rendezvous_pick(9, owner, full);
    for (const NodeId removed : full) {
      if (removed == winner) continue;
      std::vector<NodeId> reduced;
      for (const NodeId c : full) {
        if (c != removed) reduced.push_back(c);
      }
      EXPECT_EQ(rendezvous_pick(9, owner, reduced), winner);
    }
  }
}

TEST(Rendezvous, LoadIsRoughlyUniform) {
  const std::vector<NodeId> candidates{10, 20, 30, 40, 50};
  std::vector<int> counts(5, 0);
  const int owners = 50000;
  for (NodeId owner = 0; owner < owners; ++owner) {
    const NodeId winner = rendezvous_pick(13, owner, candidates);
    const auto idx = static_cast<Size>(
        std::find(candidates.begin(), candidates.end(), winner) - candidates.begin());
    ++counts[idx];
  }
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / owners, 0.2, 0.02);
  }
}

TEST(Rendezvous, SaltChangesAssignment) {
  const std::vector<NodeId> candidates{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  int moved = 0;
  for (NodeId owner = 0; owner < 500; ++owner) {
    if (rendezvous_pick(1, owner, candidates) != rendezvous_pick(2, owner, candidates)) {
      ++moved;
    }
  }
  EXPECT_GT(moved, 300);  // ~9/10 expected to move under a re-key
}

TEST(Rendezvous, SingleCandidateAlwaysWins) {
  const std::vector<NodeId> one{77};
  for (NodeId owner = 0; owner < 10; ++owner) {
    EXPECT_EQ(rendezvous_pick(3, owner, one), 77u);
  }
}

TEST(Rendezvous, PickIndexCoversRange) {
  std::vector<int> counts(4, 0);
  for (NodeId owner = 0; owner < 4000; ++owner) {
    ++counts[rendezvous_pick_index(21, owner, 4)];
  }
  for (const int c : counts) EXPECT_GT(c, 700);
}

TEST(Rendezvous, ScoreIsOwnerSensitive) {
  EXPECT_NE(rendezvous_score(1, 10, 5), rendezvous_score(1, 11, 5));
}

}  // namespace
}  // namespace manet::lm
