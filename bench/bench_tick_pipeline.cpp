/// E25: incremental tick pipeline — full-rebuild vs delta-maintained ticks.
///
/// The incremental path (RunOptions::incremental_tick, the default) keeps the
/// unit-disk graph as a per-moved-node delta, gates the hierarchy rebuild on
/// actual change and memoizes per-level elections. This bench measures the
/// resulting ticks/sec against the historical rebuild-everything tick at
/// n in {256, 1024, 4096} under three mobility regimes:
///   low  — static nodes, every measured tick gated (the steady-state win);
///   high — random waypoint at vehicular speed (mu = 0.2, about 0.1 radio
///          radii per tick), the paper's operating regime: links churn every
///          tick but locally, so localized repair plus landmark pricing must
///          deliver a real speedup (>= 1.3x at n = 4096, gated by
///          tools/check_bench.py);
///   sat  — random waypoint at mu = 1 (half a radio radius per tick), a
///          torture regime past any physical mobility model: nearly every
///          neighborhood rewires at once, so the claim degrades to the
///          no-regression bound (repair caps its bill at rebuild cost
///          instead of paying delta overhead on top).
/// Both runs of each pair are also checked metric-for-metric: the incremental
/// pipeline is bit-identical to the full rebuild by contract, and the bench
/// exits non-zero if any value diverges.

#include "bench_util.hpp"

using namespace manet;

namespace {

struct TimedRun {
  exp::RunMetrics metrics;
  double ticks_per_sec = 0.0;  // best of `reps` runs (min wall time)
};

TimedRun run_timed(const exp::ScenarioConfig& cfg, bool incremental, Size reps) {
  exp::RunOptions opts;
  opts.incremental_tick = incremental;
  // Per-tick cost only: the sampled end-of-run measurements (h_k BFS, state
  // chains) would dilute the number being compared.
  opts.measure_hops = false;
  opts.track_states = false;

  TimedRun out;
  double best_wall = std::numeric_limits<double>::infinity();
  for (Size r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    auto metrics = exp::run_simulation(cfg, opts);
    const std::chrono::duration<double> wall = std::chrono::steady_clock::now() - start;
    best_wall = std::min(best_wall, wall.count());
    if (r == 0) out.metrics = std::move(metrics);
  }
  out.ticks_per_sec = out.metrics.get("ticks") / best_wall;
  return out;
}

/// Exact comparison of the two metric vectors; prints every divergence.
Size count_divergences(const exp::RunMetrics& full, const exp::RunMetrics& inc) {
  Size bad = 0;
  if (full.values.size() != inc.values.size()) {
    std::printf("  IDENTITY VIOLATION: %zu metrics (full) vs %zu (incremental)\n",
                full.values.size(), inc.values.size());
    ++bad;
  }
  const Size limit = std::min(full.values.size(), inc.values.size());
  for (Size i = 0; i < limit; ++i) {
    const auto& [fname, fval] = full.values[i];
    const auto& [iname, ival] = inc.values[i];
    if (fname != iname || fval != ival) {
      std::printf("  IDENTITY VIOLATION at %s: full=%.17g inc=%.17g (%s)\n",
                  fname.c_str(), fval, ival, iname.c_str());
      ++bad;
    }
  }
  return bad;
}

}  // namespace

int main() {
  bench::print_header(
      "E25  bench_tick_pipeline — incremental vs full-rebuild tick throughput",
      "gated ticks skip graph+hierarchy rebuilds bit-identically; >=3x at "
      "n=4096 low-mobility, >=1.3x at n=4096 high mobility (vehicular), no "
      "regression at saturation (mu=1)");

  auto base = bench::paper_scenario();
  base.warmup = 5.0;
  base.duration = 20.0;

  const std::vector<Size> nodes{256, 1024, 4096};
  const Size reps = 2;
  bench::Artifact artifact("tick_pipeline", base, reps);

  struct Regime {
    const char* key;
    const char* title;
    double mu;  // 0 = static
  };
  const Regime regimes[] = {
      {"low", "low mobility (static)", 0.0},
      {"high", "high mobility (random waypoint, vehicular mu=0.2)", 0.2},
      {"sat", "saturation (random waypoint, mu=1)", 1.0},
  };

  Size violations = 0;
  for (const Regime& regime_cfg : regimes) {
    const char* regime = regime_cfg.key;
    auto cfg = base;
    if (regime_cfg.mu > 0.0) {
      cfg.mobility = exp::MobilityKind::kRandomWaypoint;
      cfg.mu = regime_cfg.mu;
    } else {
      cfg.mobility = exp::MobilityKind::kStatic;
    }

    analysis::TextTable table(
        {"|V|", "full (ticks/s)", "incremental (ticks/s)", "speedup"});
    for (const Size n : nodes) {
      cfg.n = n;
      const auto full = run_timed(cfg, /*incremental=*/false, reps);
      const auto inc = run_timed(cfg, /*incremental=*/true, reps);
      violations += count_divergences(full.metrics, inc.metrics);

      const double speedup = inc.ticks_per_sec / full.ticks_per_sec;
      table.add_row({std::to_string(n), bench::fixed(full.ticks_per_sec, 5),
                     bench::fixed(inc.ticks_per_sec, 5), bench::fixed(speedup, 3)});

      const auto point = [n](double v, Size count) {
        return exp::SeriesPoint{static_cast<double>(n), v, 0.0, count};
      };
      artifact.add_point(std::string("ticks_per_sec_full_") + regime,
                         point(full.ticks_per_sec, reps));
      artifact.add_point(std::string("ticks_per_sec_inc_") + regime,
                         point(inc.ticks_per_sec, reps));
      artifact.add_point(std::string("speedup_") + regime, point(speedup, reps));
    }
    std::printf("%s", table.to_string(regime_cfg.title).c_str());
  }

  artifact.set_scalar("identity_violations", static_cast<double>(violations));
  std::printf(
      "\nreading: the low-mobility rows are the gated steady state (update()\n"
      "returns unchanged, the hierarchy rebuild is skipped outright); the\n"
      "high-mobility rows show churn-proportional repair plus oracle pricing\n"
      "under realistic vehicular churn; the saturation rows bound the delta\n"
      "machinery's overhead when nearly every tick rewires everywhere.\n"
      "identity violations: %zu (must be 0).\n",
      violations);
  artifact.write();
  return violations == 0 ? 0 : 1;
}
