#include "geom/vec2.hpp"

// Vec2 is header-only; this translation unit exists so the geometry library
// always has at least one object file and to host future non-inline helpers.

namespace manet::geom {}
