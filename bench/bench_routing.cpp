/// E16/E17: the hierarchical routing substrate the paper assumes
/// (Section 2.1, after refs [7] and [14]):
///   E16 — per-node routing state is Theta(log|V|) entries, vs the flat
///         table's |V|-1 (the Kleinrock-Kamoun saving);
///   E17 — the price: bounded path stretch over shortest-path routing.

#include "bench_util.hpp"

using namespace manet;

int main() {
  bench::print_header(
      "E16/E17  bench_routing — strict hierarchical routing",
      "table = Theta(log|V|) entries/node vs flat |V|-1; bounded path stretch");

  auto cfg = bench::paper_scenario();
  cfg.mobility = exp::MobilityKind::kStatic;
  cfg.warmup = 0.0;
  cfg.duration = 2.0;

  exp::RunOptions opts;
  opts.track_events = false;
  opts.track_states = false;
  opts.measure_hops = false;
  opts.measure_routing = true;
  opts.stretch_pairs = 150;

  exp::Campaign campaign;
  analysis::TextTable table({"|V|", "hier table", "flat table", "saving", "stretch",
                             "stretch max", "recoveries", "failures"});
  for (const Size n : bench::standard_nodes()) {
    cfg.n = n;
    exp::SweepPoint point;
    point.n = n;
    point.metrics = exp::run_replications(cfg, bench::standard_replications(), opts);
    const double hier = point.metrics.mean("rt_table_size");
    const double flat = static_cast<double>(n - 1);
    table.add_row({std::to_string(n), bench::cell(point.metrics, "rt_table_size"),
                   bench::fixed(flat, 5), bench::fixed(flat / hier, 3),
                   bench::cell(point.metrics, "rt_stretch"),
                   bench::cell(point.metrics, "rt_stretch_max"),
                   bench::cell(point.metrics, "rt_recoveries"),
                   bench::cell(point.metrics, "rt_failures")});
    campaign.points.push_back(std::move(point));
  }
  std::printf("%s", table.to_string("routing state and path quality").c_str());

  bench::print_model_selection("routing table size", campaign, "rt_table_size");

  std::printf(
      "\nreading: the saving column grows ~linearly in n while stretch stays\n"
      "a small constant — the classic hierarchical-routing trade-off [7].\n"
      "Recoveries mark pairs that crossed a non-contiguous cluster and fell\n"
      "back to shortest-path repair; failures must be 0.\n");
  return 0;
}
