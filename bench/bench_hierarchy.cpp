/// E1-E3: structure of the recursive ALCA hierarchy (paper Fig. 1, eqs. (2),
/// (3), (7), (13)). Static deployments; reports, per level:
///   clusters |V_k|, aggregation alpha_k, measured intra-cluster hop count
///   h_k against the sqrt(c_k) law, and link density |E_k|/|V| against 1/c_k.

#include <cmath>

#include "bench_util.hpp"

using namespace manet;

int main() {
  bench::print_header(
      "E1-E3  bench_hierarchy — clustered hierarchy shape",
      "alpha_k = Theta(1); h_k = Theta(sqrt(c_k)) [eq. 3]; |E_k|/|V| = Theta(1/c_k) [eq. 13]");

  auto cfg = bench::paper_scenario();
  cfg.mobility = exp::MobilityKind::kStatic;
  cfg.warmup = 0.0;
  cfg.duration = 2.0;  // two static samples; structure only

  exp::RunOptions opts;
  opts.track_events = false;
  opts.track_states = false;
  opts.measure_hops = true;
  opts.hop_sample_pairs = 128;

  bench::Artifact artifact("hierarchy", cfg, bench::standard_replications());
  for (const Size n : bench::standard_nodes()) {
    cfg.n = n;
    const auto agg = exp::run_replications(cfg, bench::standard_replications(), opts);
    artifact.add_point("levels", static_cast<double>(n), agg, "levels");
    std::printf("\n|V| = %zu   (levels L = %s)\n", n, bench::cell(agg, "levels").c_str());
    analysis::TextTable table(
        {"level", "clusters", "alpha_k", "c_k", "h_k meas", "sqrt(c_k)", "h/sqrt(c)",
         "Ek_per_V", "1/c_k"});
    for (Level k = 1; k <= 12; ++k) {
      char key[32];
      std::snprintf(key, sizeof(key), "clusters.%u", k);
      if (!agg.has(key)) break;
      const double clusters = agg.mean(key);
      std::snprintf(key, sizeof(key), "alpha.%u", k);
      const double alpha = agg.mean(key);
      const double ck = static_cast<double>(n) / clusters;
      std::snprintf(key, sizeof(key), "h_k.%u", k);
      const double hk = agg.mean(key);
      std::snprintf(key, sizeof(key), "ek_per_v.%u", k);
      const double ekv = agg.mean(key);
      char series[32];
      std::snprintf(series, sizeof(series), "alpha.%u", k);
      artifact.add_point(series, static_cast<double>(n), agg, series);
      std::snprintf(series, sizeof(series), "h_k.%u", k);
      if (agg.has(series)) {
        artifact.add_point(series, static_cast<double>(n), agg, series);
      }
      table.add_row({std::to_string(k), bench::fixed(clusters), bench::fixed(alpha),
                     bench::fixed(ck), bench::fixed(hk), bench::fixed(std::sqrt(ck)),
                     bench::fixed(hk / std::sqrt(ck), 3), bench::fixed(ekv),
                     bench::fixed(1.0 / ck)});
    }
    std::printf("%s", table.to_string("per-level structure").c_str());
  }

  std::printf(
      "\nreading: h/sqrt(c) should hover around a level-independent constant\n"
      "(eq. 3) and Ek_per_V should track 1/c_k within a constant (eq. 13b).\n");
  artifact.write();
  return 0;
}
