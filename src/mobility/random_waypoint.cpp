#include "mobility/random_waypoint.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace manet::mobility {

RandomWaypoint::RandomWaypoint(const geom::Region& region, Size n, Params params,
                               std::uint64_t seed)
    : region_(region), params_(params) {
  MANET_CHECK(params_.speed_min > 0.0);
  MANET_CHECK(params_.speed_max >= params_.speed_min);
  MANET_CHECK(params_.pause >= 0.0);
  positions_.resize(n);
  legs_.resize(n);
  rngs_.reserve(n);
  for (NodeId v = 0; v < n; ++v) {
    rngs_.emplace_back(common::derive_seed(seed, v));
    positions_[v] = region_.sample(rngs_[v]);
    start_new_leg(v, positions_[v], /*at=*/0.0);
  }
}

void RandomWaypoint::start_new_leg(NodeId v, geom::Vec2 from, Time at) {
  Leg& leg = legs_[v];
  common::Xoshiro256& rng = rngs_[v];
  leg.origin = from;
  leg.dest = region_.sample(rng);
  leg.speed = common::uniform(rng, params_.speed_min, params_.speed_max);
  if (params_.speed_max == params_.speed_min) leg.speed = params_.speed_min;
  leg.depart = at + params_.pause;
  // Guard against a zero-length leg (waypoint sampled exactly at the current
  // position) which would make advance_to's leg-consumption loop spin.
  const double travel = std::max(geom::distance(from, leg.dest) / leg.speed, 1e-9);
  leg.arrive = leg.depart + travel;
}

void RandomWaypoint::advance_to(Time t) {
  MANET_CHECK_MSG(t >= now_, "mobility time must be monotone");
  for (NodeId v = 0; v < positions_.size(); ++v) {
    Leg* leg = &legs_[v];
    // Consume completed legs (possibly several if t jumps far ahead).
    while (t >= leg->arrive) {
      positions_[v] = leg->dest;
      start_new_leg(v, leg->dest, leg->arrive);
      leg = &legs_[v];
    }
    if (t <= leg->depart) {
      positions_[v] = leg->origin;  // pausing at the waypoint
    } else {
      const double frac = (t - leg->depart) / (leg->arrive - leg->depart);
      positions_[v] = leg->origin + (leg->dest - leg->origin) * frac;
    }
  }
  now_ = t;
}

}  // namespace manet::mobility
