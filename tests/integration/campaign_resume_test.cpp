#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <sstream>

#include "common/thread_pool.hpp"
#include "exp/campaign_runner.hpp"

/// Kill/resume equivalence for the campaign orchestrator: however a campaign
/// is executed — one process or sharded, straight through or interrupted at
/// any unit boundary and resumed, 1 or 8 threads — the merged Campaign must
/// be BIT-IDENTICAL to the single-process sweep_node_count path. These tests
/// compare every metric's full summary with exact double equality.

namespace manet::exp {
namespace {

namespace fs = std::filesystem;

std::string fresh_dir(const std::string& tag) {
  const std::string dir = ::testing::TempDir() + "campaign_resume_" + tag;
  fs::remove_all(dir);
  return dir;
}

CampaignSpec fast_spec() {
  const std::string text = R"({
    "schema": "manet-campaign-spec/1",
    "name": "resume-equivalence",
    "sweep": [40, 56],
    "replications": 5,
    "block": 2,
    "args": ["--seed", "7", "--warmup", "2", "--duration", "6",
             "--radius", "degree", "--degree", "12",
             "--no-events", "--no-states", "--no-hops"]
  })";
  const auto parsed = analysis::parse_json(text);
  EXPECT_TRUE(parsed.ok) << parsed.error;
  CampaignSpec spec;
  std::string error;
  EXPECT_TRUE(CampaignSpec::from_json(parsed.value, spec, error)) << error;
  return spec;
}

Campaign reference_campaign(const CampaignSpec& spec) {
  return sweep_node_count(spec.scenario, spec.sweep, spec.replications, spec.options);
}

/// Exact (bitwise, modulo NaN==NaN) equality of two campaigns over every
/// metric's aggregate summary. EXPECT_EQ on doubles is exact comparison.
void expect_bit_identical(const Campaign& got, const Campaign& want,
                          const std::string& label) {
  ASSERT_EQ(got.points.size(), want.points.size()) << label;
  for (Size p = 0; p < want.points.size(); ++p) {
    SCOPED_TRACE(label + " point n=" + std::to_string(want.points[p].n));
    EXPECT_EQ(got.points[p].n, want.points[p].n);
    const auto names = want.points[p].metrics.names();
    ASSERT_EQ(got.points[p].metrics.names(), names);
    EXPECT_EQ(got.points[p].metrics.replication_count(),
              want.points[p].metrics.replication_count());
    for (const auto& name : names) {
      SCOPED_TRACE(name);
      const auto w = want.points[p].metrics.summary(name);
      const auto g = got.points[p].metrics.summary(name);
      EXPECT_EQ(g.count, w.count);
      EXPECT_EQ(g.mean, w.mean);
      EXPECT_EQ(g.stddev, w.stddev);
      EXPECT_EQ(g.ci95, w.ci95);
      EXPECT_EQ(g.min, w.min);
      EXPECT_EQ(g.max, w.max);
    }
  }
}

TEST(CampaignResume, FullRunMatchesSweepAtEveryThreadCount) {
  const auto spec = fast_spec();
  const auto reference = reference_campaign(spec);

  for (const Size threads : {Size{1}, Size{2}, Size{8}}) {
    CampaignRunner runner(spec, fresh_dir("threads" + std::to_string(threads)));
    common::ThreadPool pool(threads);
    CampaignRunner::RunConfig config;
    config.pool = &pool;
    const auto report = runner.run(config);
    ASSERT_TRUE(report.ok) << report.error;
    EXPECT_EQ(report.executed, spec.unit_count());

    const auto merged = runner.merge();
    ASSERT_TRUE(merged.ok) << merged.error;
    EXPECT_EQ(merged.units, spec.unit_count());
    expect_bit_identical(merged.campaign, reference,
                         std::to_string(threads) + " threads");
  }
}

TEST(CampaignResume, InterruptAtEveryUnitBoundaryThenResume) {
  const auto spec = fast_spec();
  const auto reference = reference_campaign(spec);
  const Size units = spec.unit_count();

  // Kill the campaign after k completed units, for every possible k, then
  // resume to completion. Each prefix must pick up exactly where it stopped
  // and the merge must be bit-identical to the uninterrupted path.
  for (Size k = 0; k < units; ++k) {
    const std::string dir = fresh_dir("interrupt" + std::to_string(k));
    if (k == 0) {
      // Killed before any unit completed: only the manifest exists.
      std::string error;
      ASSERT_TRUE(write_campaign_manifest(dir, spec, error)) << error;
    } else {
      CampaignRunner first(spec, dir);
      CampaignRunner::RunConfig config;
      config.max_units = k;  // 0 would mean "no limit"
      const auto report = first.run(config);
      ASSERT_TRUE(report.ok) << report.error;
      EXPECT_EQ(report.executed, k);
    }

    // The second process starts from the manifest alone, like --resume DIR.
    CampaignSpec reloaded;
    std::string error;
    ASSERT_TRUE(read_campaign_manifest(dir, reloaded, error)) << error;
    CampaignRunner second(reloaded, dir);
    CampaignRunner::RunConfig config;
    config.resume = true;
    const auto report = second.run(config);
    ASSERT_TRUE(report.ok) << report.error;
    EXPECT_EQ(report.skipped, k);
    EXPECT_EQ(report.executed, units - k);

    const auto merged = second.merge();
    ASSERT_TRUE(merged.ok) << merged.error;
    expect_bit_identical(merged.campaign, reference,
                         "interrupted after " + std::to_string(k));
  }
}

TEST(CampaignResume, ShardedExecutionMergesIdentically) {
  const auto spec = fast_spec();
  const auto reference = reference_campaign(spec);
  const std::string dir = fresh_dir("shards");

  // Two shards run into the same directory (any order, different thread
  // counts — nothing about the split may leak into the merged result).
  {
    CampaignRunner shard1(spec, dir);
    common::ThreadPool pool(2);
    CampaignRunner::RunConfig config;
    config.shard_index = 1;
    config.shard_count = 2;
    config.pool = &pool;
    const auto report = shard1.run(config);
    ASSERT_TRUE(report.ok) << report.error;
    EXPECT_EQ(report.executed, report.total);

    // Merging with only one shard done reports the other shard's units.
    const auto partial = shard1.merge();
    EXPECT_FALSE(partial.ok);
    EXPECT_EQ(partial.missing.size(), spec.unit_count() - report.total);
    for (const Size index : partial.missing) EXPECT_EQ(index % 2, 0u);
  }
  {
    CampaignRunner shard0(spec, dir);
    CampaignRunner::RunConfig config;
    config.shard_index = 0;
    config.shard_count = 2;
    const auto report = shard0.run(config);
    ASSERT_TRUE(report.ok) << report.error;
  }

  CampaignRunner merger(spec, dir);
  const auto merged = merger.merge();
  ASSERT_TRUE(merged.ok) << merged.error;
  EXPECT_EQ(merged.units, spec.unit_count());
  expect_bit_identical(merged.campaign, reference, "sharded 2-way");
}

TEST(CampaignResume, RerunWithoutResumeFlagIsRefused) {
  const auto spec = fast_spec();
  const std::string dir = fresh_dir("no_resume_flag");
  CampaignRunner runner(spec, dir);
  CampaignRunner::RunConfig config;
  config.max_units = 1;
  ASSERT_TRUE(runner.run(config).ok);

  const auto report = runner.run(config);  // same config, still no resume
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.error.find("--resume"), std::string::npos);
}

}  // namespace
}  // namespace manet::exp
