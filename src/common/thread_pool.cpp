#include "common/thread_pool.hpp"

#include <algorithm>
#include <exception>

namespace manet::common {

ThreadPool::ThreadPool(std::size_t n_threads) {
  if (n_threads == 0) {
    n_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(n_threads);
  for (std::size_t i = 0; i < n_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping_ && drained
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    futures.push_back(submit([&fn, i] { fn(i); }));
  }
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

void ThreadPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                              const std::function<void(std::size_t)>& on_complete) {
  if (!on_complete) {
    parallel_for(n, fn);
    return;
  }
  std::mutex done_mutex;
  std::size_t done = 0;
  parallel_for(n, [&fn, &on_complete, &done_mutex, &done](std::size_t i) {
    fn(i);
    const std::lock_guard<std::mutex> lock(done_mutex);
    on_complete(++done);
  });
}

}  // namespace manet::common
