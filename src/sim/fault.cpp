#include "sim/fault.hpp"

#include <cstdio>

#include "common/check.hpp"

namespace manet::sim {

std::string FaultConfig::describe() const {
  if (!enabled()) return "off";
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "loss=%.3g burst=%.3g/%.3g/%.3g crash=%.3g/%.3g outage=%.3g "
                "retry=%zu timeout=%.3g backoff=%.3g audit=%.3g",
                loss, burst_loss, burst_on, burst_len, crash_rate, mean_downtime,
                outage_radius, retry_budget, arq_timeout, arq_backoff, audit_period);
  return buf;
}

FaultPlan FaultPlan::build(const FaultConfig& config, Size n, Time start, Time end,
                           std::uint64_t seed) {
  MANET_CHECK(end >= start);
  FaultPlan plan;
  plan.downtime.resize(n);
  if (!config.churn() || n == 0) return plan;

  // Each node draws its own renewal process from an independent child seed,
  // so the plan is invariant to n-ordering of the draw loop.
  for (NodeId v = 0; v < n; ++v) {
    common::Xoshiro256 rng(common::derive_seed(seed, 0xC4A5000000000000ULL + v));
    Time t = start;
    while (true) {
      t += common::exponential(rng, config.crash_rate);
      if (t >= end) break;
      const Time down = t;
      t += common::exponential(rng, 1.0 / config.mean_downtime);
      // A node still down at the horizon simply never rejoins in-window.
      plan.downtime[v].push_back(Interval{down, t});
    }
  }
  return plan;
}

FaultInjector::FaultInjector(const FaultConfig& config, Size n, Time start, Time end,
                             std::uint64_t seed)
    : config_(config), plan_(FaultPlan::build(config, n, start, end, seed)) {}

bool FaultInjector::crashed(NodeId v, Time t) const {
  if (v >= plan_.downtime.size()) return false;
  for (const auto& iv : plan_.downtime[v]) {
    if (t >= iv.down && t < iv.up) return true;
    if (iv.down > t) break;  // intervals sorted by start
  }
  return false;
}

bool FaultInjector::in_outage(double x, double y, Time t) const {
  if (!config_.outage()) return false;
  if (t < config_.outage_start || t >= config_.outage_start + config_.outage_duration) {
    return false;
  }
  const Time dt = t - config_.outage_start;
  const double cx = config_.outage_x + config_.outage_vx * dt;
  const double cy = config_.outage_y + config_.outage_vy * dt;
  const double dx = x - cx;
  const double dy = y - cy;
  return dx * dx + dy * dy <= config_.outage_radius * config_.outage_radius;
}

Size FaultInjector::scheduled_crashes() const {
  Size total = 0;
  for (const auto& ivs : plan_.downtime) total += ivs.size();
  return total;
}

}  // namespace manet::sim
