#include "cluster/hierarchy.hpp"

#include "common/check.hpp"

namespace manet::cluster {

const LevelView& Hierarchy::level(Level k) const {
  MANET_CHECK(k < levels_.size());
  return levels_[k];
}

NodeId Hierarchy::ancestor(NodeId v, Level k) const {
  MANET_CHECK(k < ancestor_.size());
  MANET_CHECK(v < ancestor_[k].size());
  return ancestor_[k][v];
}

NodeId Hierarchy::ancestor_id(NodeId v, Level k) const {
  return level(k).ids[ancestor(v, k)];
}

const std::vector<NodeId>& Hierarchy::children(Level k, NodeId cluster) const {
  MANET_CHECK(k >= 1 && k < levels_.size());
  MANET_CHECK(cluster < children_[k].size());
  return children_[k][cluster];
}

const std::vector<NodeId>& Hierarchy::members0(Level k, NodeId cluster) const {
  MANET_CHECK(k < levels_.size());
  MANET_CHECK(cluster < members0_[k].size());
  return members0_[k][cluster];
}

std::vector<NodeId> Hierarchy::address(NodeId v) const {
  std::vector<NodeId> out;
  out.reserve(level_count());
  for (Level k = top_level();; --k) {
    out.push_back(ancestor_id(v, k));
    if (k == 0) break;
  }
  return out;
}

double Hierarchy::alpha(Level k) const {
  MANET_CHECK(k >= 1 && k < levels_.size());
  return static_cast<double>(levels_[k - 1].vertex_count()) /
         static_cast<double>(levels_[k].vertex_count());
}

double Hierarchy::aggregation(Level k) const {
  MANET_CHECK(k < levels_.size());
  return static_cast<double>(levels_[0].vertex_count()) /
         static_cast<double>(levels_[k].vertex_count());
}

}  // namespace manet::cluster
